#include "core/enforce.h"

#include <map>
#include <set>
#include <unordered_map>

namespace mdmatch {

namespace {

/// Union-find over value cells with a per-class resolved value.
class CellUnion {
 public:
  CellUnion(size_t n, ValuePolicy policy) : policy_(policy) {
    parent_.resize(n);
    size_.assign(n, 1);
    value_.resize(n);
    has_left_.assign(n, false);
    if (policy_ == ValuePolicy::kMostFrequent) counts_.resize(n);
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  void Init(size_t cell, std::string value, bool is_left) {
    if (policy_ == ValuePolicy::kMostFrequent) counts_[cell][value] = 1;
    value_[cell] = std::move(value);
    has_left_[cell] = is_left;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  const std::string& Value(size_t x) { return value_[Find(x)]; }

  /// Merges the classes of a and b; returns true when they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    bool left = has_left_[ra] || has_left_[rb];
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    if (policy_ == ValuePolicy::kMostFrequent) {
      for (auto& [v, c] : counts_[rb]) counts_[ra][v] += c;
      counts_[rb].clear();
      value_[ra] = MajorityValue(counts_[ra]);
    } else {
      value_[ra] = Resolve(ra, rb);
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    has_left_[ra] = left;
    return true;
  }

 private:
  std::string Resolve(size_t ra, size_t rb) const {
    const std::string& va = value_[ra];
    const std::string& vb = value_[rb];
    switch (policy_) {
      case ValuePolicy::kPreferLeft:
        if (has_left_[ra] != has_left_[rb]) {
          return has_left_[ra] ? va : vb;
        }
        [[fallthrough]];
      case ValuePolicy::kPreferLongest:
      case ValuePolicy::kMostFrequent:  // unreachable (handled in Union)
        if (va.size() != vb.size()) return va.size() > vb.size() ? va : vb;
        return va > vb ? va : vb;
      case ValuePolicy::kLexGreatest:
        return va > vb ? va : vb;
    }
    return va;
  }

  static std::string MajorityValue(
      const std::map<std::string, size_t>& counts) {
    std::string best;
    size_t best_count = 0;
    for (const auto& [v, c] : counts) {
      bool wins = c > best_count ||
                  (c == best_count &&
                   (v.size() > best.size() ||
                    (v.size() == best.size() && v > best)));
      if (wins) {
        best = v;
        best_count = c;
      }
    }
    return best;
  }

  ValuePolicy policy_;
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  std::vector<std::string> value_;
  std::vector<bool> has_left_;
  std::vector<std::map<std::string, size_t>> counts_;  // kMostFrequent only
};

bool SchemasIdentical(const Schema& a, const Schema& b) {
  if (a.name() != b.name() || a.arity() != b.arity()) return false;
  for (int32_t i = 0; i < a.arity(); ++i) {
    if (a.attribute(i).name != b.attribute(i).name) return false;
  }
  return true;
}

}  // namespace

Result<Instance> Enforce(const Instance& d, const MdSet& sigma,
                         const sim::SimOpRegistry& ops,
                         const EnforceOptions& options, EnforceStats* stats) {
  MDMATCH_RETURN_NOT_OK(ValidateSet(d.schema_pair(), sigma));
  const MdSet norm = NormalizeSet(sigma);

  const Relation& il = d.left();
  const Relation& ir = d.right();
  const size_t left_arity = static_cast<size_t>(il.schema().arity());
  const size_t right_arity = static_cast<size_t>(ir.schema().arity());

  // Cell layout: the left relation's cells first, then — unless aliased by
  // tuple id for self pairs — the right relation's cells.
  const bool self_pair = SchemasIdentical(il.schema(), ir.schema());
  std::unordered_map<TupleId, size_t> left_base_by_id;
  if (self_pair) {
    for (size_t ti = 0; ti < il.size(); ++ti) {
      left_base_by_id[il.tuple(ti).id()] = ti * left_arity;
    }
  }

  const size_t left_cells = il.size() * left_arity;
  std::vector<size_t> right_base(ir.size());
  size_t next = left_cells;
  for (size_t ti = 0; ti < ir.size(); ++ti) {
    if (self_pair) {
      auto it = left_base_by_id.find(ir.tuple(ti).id());
      if (it != left_base_by_id.end()) {
        right_base[ti] = it->second;
        continue;
      }
    }
    right_base[ti] = next;
    next += right_arity;
  }
  const size_t num_cells = next;

  CellUnion cells(num_cells, options.policy);
  for (size_t ti = 0; ti < il.size(); ++ti) {
    for (size_t a = 0; a < left_arity; ++a) {
      cells.Init(ti * left_arity + a, il.tuple(ti).value(static_cast<AttrId>(a)),
                 true);
    }
  }
  for (size_t ti = 0; ti < ir.size(); ++ti) {
    if (self_pair && right_base[ti] < left_cells) continue;  // aliased
    for (size_t a = 0; a < right_arity; ++a) {
      cells.Init(right_base[ti] + a, ir.tuple(ti).value(static_cast<AttrId>(a)),
                 false);
    }
  }

  auto left_cell = [&](size_t ti, AttrId a) {
    return ti * left_arity + static_cast<size_t>(a);
  };
  auto right_cell = [&](size_t ti, AttrId a) {
    return right_base[ti] + static_cast<size_t>(a);
  };

  auto lhs_matches_current = [&](const MatchingDependency& md, size_t i1,
                                 size_t i2) {
    for (const auto& c : md.lhs()) {
      if (!ops.Eval(c.op, cells.Value(left_cell(i1, c.attrs.left)),
                    cells.Value(right_cell(i2, c.attrs.right)))) {
        return false;
      }
    }
    return true;
  };

  // Obligation ledger: (md index, left tuple index, right tuple index).
  std::set<std::tuple<size_t, size_t, size_t>> obligations;

  // Round 0: record every pair matching in the ORIGINAL D, so the
  // (D, D') ⊨ Σ conditions are tracked even if early merges disturb a
  // similarity match before it is scanned.
  for (size_t mi = 0; mi < norm.size(); ++mi) {
    for (size_t i1 = 0; i1 < il.size(); ++i1) {
      for (size_t i2 = 0; i2 < ir.size(); ++i2) {
        if (MatchesLhs(norm[mi], ops, il.tuple(i1), ir.tuple(i2))) {
          obligations.emplace(mi, i1, i2);
        }
      }
    }
  }
  if (stats) stats->obligations = obligations.size();

  for (size_t round = 0; round < options.max_rounds; ++round) {
    if (stats) ++stats->rounds;
    bool changed = false;

    // Discover new matches under the current valuation (stability).
    for (size_t mi = 0; mi < norm.size(); ++mi) {
      for (size_t i1 = 0; i1 < il.size(); ++i1) {
        for (size_t i2 = 0; i2 < ir.size(); ++i2) {
          if (obligations.count({mi, i1, i2})) continue;
          if (lhs_matches_current(norm[mi], i1, i2)) {
            obligations.emplace(mi, i1, i2);
            if (stats) ++stats->obligations;
            changed = true;
          }
        }
      }
    }

    // Enforce every obligation: identify the RHS cells and repair any LHS
    // conjunct broken by value reassignment (merging makes it equal, and
    // equality subsumes every similarity operator).
    for (const auto& [mi, i1, i2] : obligations) {
      const auto& md = norm[mi];
      const AttrPair rhs = md.rhs()[0];
      if (cells.Union(left_cell(i1, rhs.left), right_cell(i2, rhs.right))) {
        changed = true;
        if (stats) ++stats->merges;
      }
      for (const auto& c : md.lhs()) {
        size_t lc = left_cell(i1, c.attrs.left);
        size_t rc = right_cell(i2, c.attrs.right);
        if (!ops.Eval(c.op, cells.Value(lc), cells.Value(rc))) {
          if (cells.Union(lc, rc)) {
            changed = true;
            if (stats) {
              ++stats->merges;
              ++stats->repairs;
            }
          }
        }
      }
    }

    if (!changed) break;
  }

  // Materialize D' from the resolved cell values.
  Relation out_left(il.schema());
  for (size_t ti = 0; ti < il.size(); ++ti) {
    Tuple t = il.tuple(ti);
    for (size_t a = 0; a < left_arity; ++a) {
      t.set_value(static_cast<AttrId>(a),
                  cells.Value(left_cell(ti, static_cast<AttrId>(a))));
    }
    MDMATCH_RETURN_NOT_OK(out_left.AppendTuple(std::move(t)));
  }
  Relation out_right(ir.schema());
  for (size_t ti = 0; ti < ir.size(); ++ti) {
    Tuple t = ir.tuple(ti);
    for (size_t a = 0; a < right_arity; ++a) {
      t.set_value(static_cast<AttrId>(a),
                  cells.Value(right_cell(ti, static_cast<AttrId>(a))));
    }
    MDMATCH_RETURN_NOT_OK(out_right.AppendTuple(std::move(t)));
  }
  return Instance(std::move(out_left), std::move(out_right));
}

bool Satisfies(const Instance& d, const Instance& d_prime, const MdSet& sigma,
               const sim::SimOpRegistry& ops,
               std::vector<Violation>* violations) {
  const MdSet norm = NormalizeSet(sigma);
  bool ok = true;
  auto report = [&](size_t mi, TupleId l, TupleId r, std::string reason) {
    ok = false;
    if (violations) violations->push_back(Violation{mi, l, r, std::move(reason)});
  };

  std::unordered_map<TupleId, const Tuple*> left_prime, right_prime;
  for (const auto& t : d_prime.left().tuples()) left_prime[t.id()] = &t;
  for (const auto& t : d_prime.right().tuples()) right_prime[t.id()] = &t;

  for (size_t mi = 0; mi < norm.size(); ++mi) {
    const auto& md = norm[mi];
    for (const auto& t1 : d.left().tuples()) {
      for (const auto& t2 : d.right().tuples()) {
        if (!MatchesLhs(md, ops, t1, t2)) continue;
        auto l = left_prime.find(t1.id());
        auto r = right_prime.find(t2.id());
        if (l == left_prime.end() || r == right_prime.end()) {
          report(mi, t1.id(), t2.id(), "tuple missing from D' (D ⋢ D')");
          continue;
        }
        const AttrPair rhs = md.rhs()[0];
        if (l->second->value(rhs.left) != r->second->value(rhs.right)) {
          report(mi, t1.id(), t2.id(), "RHS attributes not identified in D'");
        }
        if (!MatchesLhs(md, ops, *l->second, *r->second)) {
          report(mi, t1.id(), t2.id(), "LHS no longer matches in D'");
        }
      }
    }
  }
  return ok;
}

bool IsStable(const Instance& d, const MdSet& sigma,
              const sim::SimOpRegistry& ops,
              std::vector<Violation>* violations) {
  return Satisfies(d, d, sigma, ops, violations);
}

}  // namespace mdmatch
