#ifndef MDMATCH_MATCH_WINDOWING_H_
#define MDMATCH_MATCH_WINDOWING_H_

#include <cstddef>

#include "match/key_function.h"
#include "match/match_result.h"
#include "schema/instance.h"

namespace mdmatch::match {

/// \brief Windowing (the sorted-neighborhood candidate generator of [20],
/// paper Section 1 "Applications"): merge the tuples of both relations,
/// sort by the key, slide a window of `window_size` tuples and emit every
/// cross-relation pair inside a window.
///
/// The returned candidate set is deduplicated; PC/RR are computed by
/// EvaluateCandidates.
CandidateSet WindowCandidates(const Instance& instance, const KeyFunction& key,
                              size_t window_size);

/// Multi-pass variant: union of the candidates of each pass (the paper
/// repeats blocking/windowing "multiple times, each using a different
/// key").
CandidateSet WindowCandidatesMultiPass(const Instance& instance,
                                       const std::vector<KeyFunction>& keys,
                                       size_t window_size);

}  // namespace mdmatch::match

#endif  // MDMATCH_MATCH_WINDOWING_H_
