// Pair-evaluation throughput: naive vs compiled vs cached.
//
// Rule evaluation is the dominant stage of every batch and session flush
// (BENCH_session), so this bench isolates exactly the per-pair decision:
// the same candidate pairs are classified three ways —
//   naive:    the pre-compiled-engine path (AnyRuleMatches /
//             FsModel::IsMatch re-dispatching every conjunct through the
//             SimOpRegistry),
//   compiled: MatchPlan::MatchesPair through match::CompiledEvaluator
//             (deduplicated atom table, selectivity-ordered lazy atoms,
//             bit-parallel bounded edit distance, per-record profiles),
//   cached:   the compiled path behind a warm PairDecisionCache
// — on two workloads: the default rule-based credit/billing corpus and
// the fig9 Fellegi-Sunter configuration (RCK-union comparison vector).
//
// Emits an aligned table and machine-readable BENCH_pairs.json (perf
// trajectory point for this bench across PRs). MDMATCH_BENCH_FULL=1 runs
// the larger corpus; MDMATCH_BENCH_TINY=1 shrinks everything for CI smoke
// runs (validity of the JSON and agreement of the three strategies, not
// stable numbers).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "api/executor.h"
#include "api/plan.h"
#include "bench_common.h"
#include "candidate/windowing.h"
#include "match/pair_cache.h"
#include "match/windowing.h"
#include "sim/edit_distance.h"
#include "util/arena.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace mdmatch;

namespace {

// ----------------------------------------------------------------------
// The pre-PR baseline, kept verbatim from the seed tree so the "naive"
// column keeps measuring the same thing as the engine improves: a banded
// row-DP Levenshtein filter (no bit-parallel kernel) falling back to the
// full allocating Damerau-Levenshtein matrix, dispatched per conjunct
// through a type-erased registry predicate.

size_t SeedLevenshteinBounded(std::string_view a, std::string_view b,
                              size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > max_dist) return max_dist + 1;
  if (b.empty()) return a.size();
  const size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), max_dist); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = (i > max_dist) ? i - max_dist : 1;
    size_t hi = std::min(b.size(), i + max_dist);
    size_t diag = (lo > 1) ? row[lo - 1] : row[0];
    if (lo == 1) row[0] = i <= max_dist ? i : kInf;
    size_t row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t up = row[j];
      size_t left = (j == lo && lo > 1) ? kInf : row[j - 1];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({up + 1, left + 1, diag + cost});
      diag = up;
      row_min = std::min(row_min, row[j]);
    }
    if (hi < b.size()) row[hi + 1] = kInf;
    if (row_min > max_dist) return max_dist + 1;
  }
  return std::min(row[b.size()], max_dist + 1);
}

bool SeedDlSimilar(std::string_view a, std::string_view b, double theta) {
  if (a == b) return true;
  double longest = static_cast<double>(std::max(a.size(), b.size()));
  double allowed = (1.0 - theta) * longest + 1e-9;
  size_t budget = static_cast<size_t>(allowed);
  size_t gap = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  if (static_cast<double>(gap) > allowed) return false;
  size_t lev = SeedLevenshteinBounded(a, b, 2 * budget + 1);
  if (static_cast<double>(lev) <= allowed) return true;
  if (lev > 2 * budget + 1) return false;
  size_t dist = sim::DamerauLevenshteinDistance(a, b);
  return static_cast<double>(dist) <= allowed;
}

/// A registry with the same operator ids as `ops` but with every DL
/// operator bound to the seed implementation — evaluating the plan's
/// rules/vector against it reproduces the pre-PR per-pair cost. Only the
/// DL family is seed-bound (the only non-equality family these workloads
/// use); RunWorkload warns if a plan ever references another one, since
/// its "naive" column would then partly ride the post-PR kernels.
sim::SimOpRegistry SeedReferenceRegistry(const sim::SimOpRegistry& ops) {
  sim::SimOpRegistry ref;  // id 0 ("=") is already installed
  for (sim::SimOpId id = 1; static_cast<size_t>(id) < ops.size(); ++id) {
    const sim::SimOpInfo& info = ops.Info(id);
    sim::SimOpRegistry::Predicate pred;
    if (info.kind == sim::SimOpKind::kDl) {
      const double theta = info.threshold;
      pred = [theta](std::string_view a, std::string_view b) {
        return SeedDlSimilar(a, b, theta);
      };
    } else {
      pred = [&ops, id](std::string_view a, std::string_view b) {
        return ops.Eval(id, a, b);
      };
    }
    auto registered = ref.Register(ops.Name(id), std::move(pred));
    if (!registered.ok() || *registered != id) {
      std::fprintf(stderr, "reference registry id mismatch\n");
      std::exit(1);
    }
  }
  return ref;
}

struct WorkloadResult {
  std::string name;
  size_t pairs = 0;
  size_t matches = 0;
  double naive_pps = 0;
  double compiled_pps = 0;
  double cached_pps = 0;
  /// SoA strips through MatchesBatch with the per-pass transients in a
  /// Reset-reused arena (the executor/session steady state) vs a fresh
  /// arena built and torn down every pass (the arena-off toggle: same
  /// kernels, cold allocation each time).
  double batch_pps = 0;
  double batch_noarena_pps = 0;
};

bool TinyRun() {
  const char* env = std::getenv("MDMATCH_BENCH_TINY");
  return env != nullptr && std::string(env) == "1";
}

/// Times `eval` over every pair, repeated until ~0.3s of work (at least
/// one pass), and returns pairs/sec. `matches` gets the per-pass match
/// count (sanity-checked identical across evaluation strategies).
template <typename Eval>
double Throughput(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                  size_t* matches, const Eval& eval) {
  const double min_seconds = TinyRun() ? 0.02 : 0.3;
  double total_seconds = 0;
  size_t passes = 0;
  while (passes < 1 || (total_seconds < min_seconds && passes < 50)) {
    size_t hits = 0;
    total_seconds += bench::TimedSeconds([&] {
      for (const auto& [l, r] : pairs) {
        if (eval(l, r)) ++hits;
      }
    });
    *matches = hits;
    ++passes;
  }
  return static_cast<double>(pairs.size()) * static_cast<double>(passes) /
         std::max(1e-9, total_seconds);
}

WorkloadResult RunWorkload(const std::string& name,
                           const datagen::CreditBillingData& data,
                           sim::SimOpRegistry* ops,
                           api::PlanOptions options,
                           bool relax_rules = true) {
  WorkloadResult result;
  result.name = name;

  auto plan = bench::CompileExperimentPlan(data, ops, options, relax_rules);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed for %s: %s\n", name.c_str(),
                 plan.status().ToString().c_str());
    return result;
  }
  const api::MatchPlan& p = **plan;

  // The candidate pairs the plan itself would classify (shared standard
  // windowing keys, as in Exp-2/3).
  match::CandidateSet candidates = match::WindowCandidatesMultiPass(
      data.instance, p.sort_keys(), p.options().window_size);
  const auto& pairs = candidates.pairs();
  result.pairs = pairs.size();
  const Relation& left = data.instance.left();
  const Relation& right = data.instance.right();

  // Per-pair decisions of one strategy, element-aligned with `pairs` —
  // the divergence gate compares these element-wise (aggregate counts
  // could mask compensating flips).
  auto decisions_of = [&](const auto& eval) {
    std::vector<uint8_t> out(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = eval(pairs[i].first, pairs[i].second) ? 1 : 0;
    }
    return out;
  };
  auto check_agrees = [&](const std::vector<uint8_t>& naive,
                          const std::vector<uint8_t>& other,
                          const char* label) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (naive[i] != other[i]) {
        std::fprintf(stderr,
                     "BUG: %s decision diverges from naive on %s pair "
                     "(%u, %u): naive %d, %s %d\n",
                     label, name.c_str(), pairs[i].first, pairs[i].second,
                     naive[i], label, other[i]);
        std::exit(1);
      }
    }
  };

  // Naive: exactly what MatchesPair computed before the compiled engine —
  // per-rule registry dispatch over the seed similarity implementations.
  sim::SimOpRegistry seed_ops = SeedReferenceRegistry(*ops);
  std::vector<Conjunct> basis_conjuncts;
  for (const auto& rule : p.rules()) {
    for (const Conjunct& c : rule.elements()) basis_conjuncts.push_back(c);
  }
  if (p.fs() != nullptr) {
    const auto& elems = p.fs()->vector().elements();
    basis_conjuncts.insert(basis_conjuncts.end(), elems.begin(), elems.end());
  }
  for (const Conjunct& c : basis_conjuncts) {
    const sim::SimOpKind kind = ops->Info(c.op).kind;
    if (kind != sim::SimOpKind::kEquality && kind != sim::SimOpKind::kDl) {
      std::fprintf(stderr,
                   "warning: %s uses op '%s', which has no seed-bound "
                   "reference — the naive column partly measures post-PR "
                   "kernels\n",
                   name.c_str(), ops->Name(c.op).c_str());
    }
  }
  auto naive_eval = [&](uint32_t l, uint32_t r) {
    if (options.matcher == api::PlanOptions::Matcher::kRuleBased) {
      return match::AnyRuleMatches(p.rules(), seed_ops, left.tuple(l),
                                   right.tuple(r));
    }
    return p.fs()->IsMatch(seed_ops, left.tuple(l), right.tuple(r));
  };
  size_t naive_matches = 0;
  result.naive_pps = Throughput(pairs, &naive_matches, naive_eval);
  result.matches = naive_matches;
  const std::vector<uint8_t> naive_decisions = decisions_of(naive_eval);

  // Compiled: the engine path, per-record profiles included.
  std::vector<match::RecordProfile> profiles[2];
  const match::CompiledEvaluator& evaluator = p.evaluator();
  if (evaluator.needs_profiles()) {
    for (int side = 0; side < 2; ++side) {
      const Relation& rel = side == 0 ? left : right;
      for (size_t i = 0; i < rel.size(); ++i) {
        profiles[side].push_back(evaluator.ProfileRecord(rel.tuple(i), side));
      }
    }
  }
  auto compiled_eval = [&](uint32_t l, uint32_t r) {
    return p.MatchesPair(left.tuple(l), right.tuple(r),
                         profiles[0].empty() ? nullptr : &profiles[0][l],
                         profiles[1].empty() ? nullptr : &profiles[1][r]);
  };
  size_t compiled_matches = 0;
  result.compiled_pps = Throughput(pairs, &compiled_matches, compiled_eval);
  check_agrees(naive_decisions, decisions_of(compiled_eval), "compiled");

  // Batch: the same decisions through the SoA strip path — columns and
  // interner built once (like the compiled arm's profiles), strips, lane
  // buffers and evaluation timed per pass.
  if (evaluator.SupportsBatch()) {
    util::Arena cols_arena;
    match::ValueInterner interner;
    match::BatchColumns bcols[2];
    for (int side = 0; side < 2; ++side) {
      const Relation& rel = side == 0 ? left : right;
      bcols[side] =
          evaluator.MakeBatchColumns(side, rel.size(), &cols_arena);
      for (size_t i = 0; i < rel.size(); ++i) {
        evaluator.FillBatchRow(
            &bcols[side], static_cast<uint32_t>(i), rel.tuple(i),
            profiles[side].empty() ? nullptr : &profiles[side][i],
            &interner);
      }
    }
    std::vector<uint8_t> batch_decisions(pairs.size());
    auto time_batch = [&](bool reuse_arena) {
      util::Arena reused;
      const double min_seconds = TinyRun() ? 0.02 : 0.3;
      double total_seconds = 0;
      size_t passes = 0;
      while (passes < 1 || (total_seconds < min_seconds && passes < 50)) {
        total_seconds += bench::TimedSeconds([&] {
          util::Arena fresh;
          util::Arena& arena = reuse_arena ? reused : fresh;
          if (reuse_arena) arena.Reset();
          const candidate::PairStrips strips =
              candidate::BuildStrips(pairs, &arena);
          uint8_t* lane_dec = arena.AllocateArrayOf<uint8_t>(strips.lanes);
          for (size_t b = 0; b < strips.num_batches; ++b) {
            const uint32_t first = strips.batch_first_lane[b];
            evaluator.MatchesBatch(bcols[0], bcols[1], strips.batches[b],
                                   nullptr, lane_dec + first, nullptr);
          }
          for (size_t lane = 0; lane < strips.lanes; ++lane) {
            batch_decisions[strips.lane_pair[lane]] = lane_dec[lane];
          }
        });
        ++passes;
      }
      return static_cast<double>(pairs.size()) *
             static_cast<double>(passes) / std::max(1e-9, total_seconds);
    };
    result.batch_pps = time_batch(/*reuse_arena=*/true);
    check_agrees(naive_decisions, batch_decisions, "batch");
    result.batch_noarena_pps = time_batch(/*reuse_arena=*/false);
    check_agrees(naive_decisions, batch_decisions, "batch-noarena");
  }

  // Cached: a warm pair-decision cache in front of the compiled path —
  // the steady state of repeated batches over unchanged records.
  match::PairDecisionCache cache(pairs.size() * 2);
  std::vector<uint64_t> fingerprints[2];
  for (int side = 0; side < 2; ++side) {
    const Relation& rel = side == 0 ? left : right;
    for (size_t i = 0; i < rel.size(); ++i) {
      fingerprints[side].push_back(match::TupleFingerprint(rel.tuple(i)));
    }
  }
  auto cached_eval = [&](uint32_t l, uint32_t r) {
    match::PairDecisionCache::Key key{left.tuple(l).id(), right.tuple(r).id(),
                                      fingerprints[0][l], fingerprints[1][r]};
    if (auto cached = cache.Lookup(key)) return *cached;
    const bool decision = p.MatchesPair(left.tuple(l), right.tuple(r));
    cache.Insert(key, decision);
    return decision;
  };
  // The warm-up pass doubles as the cold-cache divergence check.
  check_agrees(naive_decisions, decisions_of(cached_eval), "cached-cold");
  size_t cached_matches = 0;
  result.cached_pps = Throughput(pairs, &cached_matches, cached_eval);
  check_agrees(naive_decisions, decisions_of(cached_eval), "cached-warm");
  return result;
}

}  // namespace

int main() {
  const size_t num_base =
      TinyRun() ? 400 : (bench::FullRun() ? 20000 : 4000);

  std::printf("== Pair-evaluation throughput: naive vs compiled vs cached "
              "(K = %zu) ==\n",
              num_base);
  TableWriter table({"workload", "pairs", "matches", "naive p/s",
                     "compiled p/s", "batch p/s", "cached p/s", "compiled x",
                     "batch/compiled x", "cached x"});

  std::vector<WorkloadResult> results;
  {
    // Workload 1: the default rule-based corpus (relaxed top-RCK rules).
    sim::SimOpRegistry ops;
    datagen::CreditBillingOptions gen;
    gen.num_base = num_base;
    gen.seed = 7300;
    datagen::CreditBillingData data =
        datagen::GenerateCreditBilling(gen, &ops);
    results.push_back(
        RunWorkload("rule_default", data, &ops, api::PlanOptions{}));
  }
  {
    // Workload 2: the fig9 FS configuration (RCK-union vector, EM-trained
    // at Build, MAP threshold).
    sim::SimOpRegistry ops;
    datagen::CreditBillingOptions gen;
    gen.num_base = num_base;
    gen.seed = 1000 + num_base;  // the fig9 bench's dataset seeding
    datagen::CreditBillingData data =
        datagen::GenerateCreditBilling(gen, &ops);
    api::PlanOptions options;
    options.matcher = api::PlanOptions::Matcher::kFellegiSunter;
    results.push_back(RunWorkload("fig9_fs", data, &ops, options));
  }
  {
    // Workload 3: strict key-equality matching — the top-RCK rules before
    // the θ = 0.8 relaxation (the paper's eq(cc) ∧ eq(phn) shape). Every
    // atom is an equality, so the whole evaluation runs on interned value
    // ids — the workload the SIMD batch path targets.
    sim::SimOpRegistry ops;
    datagen::CreditBillingOptions gen;
    gen.num_base = num_base;
    gen.seed = 7300;
    datagen::CreditBillingData data =
        datagen::GenerateCreditBilling(gen, &ops);
    results.push_back(RunWorkload("rule_eq_keys", data, &ops,
                                  api::PlanOptions{}, /*relax_rules=*/false));
  }

  std::vector<std::string> json_rows;
  for (const WorkloadResult& r : results) {
    const double cx = r.compiled_pps / std::max(1e-9, r.naive_pps);
    const double hx = r.cached_pps / std::max(1e-9, r.naive_pps);
    const double bx = r.batch_pps / std::max(1e-9, r.compiled_pps);
    table.AddRow({r.name, std::to_string(r.pairs), std::to_string(r.matches),
                  TableWriter::Num(r.naive_pps, 0),
                  TableWriter::Num(r.compiled_pps, 0),
                  TableWriter::Num(r.batch_pps, 0),
                  TableWriter::Num(r.cached_pps, 0), TableWriter::Num(cx, 2),
                  TableWriter::Num(bx, 2), TableWriter::Num(hx, 2)});
    json_rows.push_back(StringPrintf(
        "    {\"workload\": \"%s\", \"pairs\": %zu, \"matches\": %zu, "
        "\"naive_pps\": %.0f, \"compiled_pps\": %.0f, \"cached_pps\": %.0f, "
        "\"batch_pps\": %.0f, \"batch_noarena_pps\": %.0f, "
        "\"speedup_compiled_vs_naive\": %.2f, "
        "\"speedup_cached_vs_naive\": %.2f, "
        "\"speedup_batch_vs_compiled\": %.2f}",
        r.name.c_str(), r.pairs, r.matches, r.naive_pps, r.compiled_pps,
        r.cached_pps, r.batch_pps, r.batch_noarena_pps, cx, hx, bx));
  }
  table.Print(std::cout);

  std::ofstream json("BENCH_pairs.json");
  json << "{\n  \"bench\": \"pair_throughput\",\n  \"num_base\": " << num_base
       << ",\n  \"workloads\": [\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_pairs.json\n");
  return 0;
}
