#include "match/pipeline.h"

#include <algorithm>

#include "match/blocking.h"
#include "match/comparison.h"
#include "match/key_function.h"
#include "match/sorted_neighborhood.h"
#include "match/windowing.h"
#include "util/stopwatch.h"

namespace mdmatch::match {

Result<PipelineReport> RunPipeline(const Instance& instance,
                                   const ComparableLists& target,
                                   const MdSet& sigma,
                                   sim::SimOpRegistry* ops,
                                   QualityModel* quality,
                                   const PipelineOptions& options) {
  SchemaPair pair = instance.schema_pair();
  MDMATCH_RETURN_NOT_OK(ValidateSet(pair, sigma));
  if (target.size() == 0) {
    return Status::InvalidArgument("empty target lists (Y1, Y2)");
  }

  PipelineReport report;

  // --- compile time: deduce the RCKs ---
  Stopwatch sw;
  FindRcksOptions fopt;
  fopt.m = options.num_rcks;
  report.rcks = FindRcks(pair, *ops, sigma, target, fopt, quality).rcks;
  report.deduce_seconds = sw.ElapsedSeconds();
  if (report.rcks.empty()) {
    return Status::FailedPrecondition("no RCK deducible from Σ");
  }

  const size_t top_k = std::min(options.top_k, report.rcks.size());
  std::vector<RelativeKey> top(report.rcks.begin(),
                               report.rcks.begin() + top_k);

  // --- candidate generation from (part of) the RCKs ---
  sw.Reset();
  if (options.candidates == PipelineOptions::Candidates::kWindowing) {
    std::vector<KeyFunction> keys;
    for (const auto& key : top) {
      keys.push_back(KeyFunction::FromKeyElementsByCost(
          key, pair, *quality, options.key_attrs, options.soundex_domains));
    }
    report.candidates =
        WindowCandidatesMultiPass(instance, keys, options.window_size);
  } else {
    RelativeKey merged;
    for (size_t i = 0; i < top.size() && i < 2; ++i) {
      for (const auto& e : top[i].elements()) merged.AddUnique(e);
    }
    KeyFunction key = KeyFunction::FromKeyElementsByCost(
        merged, pair, *quality, options.key_attrs, options.soundex_domains);
    report.candidates = BlockCandidates(instance, key);
  }
  report.candidate_seconds = sw.ElapsedSeconds();

  // --- matching over the candidates ---
  sw.Reset();
  if (options.matcher == PipelineOptions::Matcher::kRuleBased) {
    std::vector<MatchRule> rules(top.begin(), top.end());
    if (options.relax_theta > 0) {
      rules = RelaxRulesForMatching(rules, ops->Dl(options.relax_theta));
    }
    for (const auto& [l, r] : report.candidates.pairs()) {
      if (AnyRuleMatches(rules, *ops, instance.left().tuple(l),
                         instance.right().tuple(r))) {
        report.matches.Add(l, r);
      }
    }
  } else {
    ComparisonVector vector = ComparisonVector::UnionOfKeys(top, top_k);
    if (options.relax_theta > 0) {
      vector = RelaxVectorForMatching(vector, ops->Dl(options.relax_theta));
    }
    FellegiSunter fs(std::move(vector), options.fs_options);
    MDMATCH_RETURN_NOT_OK(fs.Train(instance, *ops));
    report.matches = fs.Match(instance, *ops, report.candidates);
  }
  if (options.transitive_closure) {
    report.matches =
        ClusterMatches(report.matches, instance).ImpliedMatches();
  }
  report.match_seconds = sw.ElapsedSeconds();

  report.match_quality = Evaluate(report.matches, instance);
  report.candidate_quality = EvaluateCandidates(report.candidates, instance);
  return report;
}

}  // namespace mdmatch::match
