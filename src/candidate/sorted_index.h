#ifndef MDMATCH_CANDIDATE_SORTED_INDEX_H_
#define MDMATCH_CANDIDATE_SORTED_INDEX_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "candidate/indexed_entry.h"

namespace mdmatch::candidate {

/// \brief A persistent order-statistic index over one windowing sort key.
///
/// Implemented as an immutable treap with subtree counts: ranked insert /
/// remove and rank queries are O(log n) expected, and every mutation
/// path-copies, so *copying a SortedKeyIndex is O(1)* — the copy is a
/// frozen snapshot that structurally shares all untouched nodes with the
/// evolving original. api::MatchSession keeps one per windowing pass: a
/// flush merges a delta in O(delta · log n) instead of the O(corpus)
/// rebuild a flat sorted vector costs, and readers (shard workers, other
/// sessions via candidate::IndexCatalog) scan an earlier snapshot without
/// locks while the owner keeps inserting.
///
/// Treap priorities are deterministic hashes of (key, side, seq), so the
/// tree shape — and therefore every traversal — is a pure function of the
/// contents. Entries are heap-allocated once on insert and shared by all
/// versions that contain them: pointers returned by Span stay valid as
/// long as any snapshot containing the entry is alive.
class SortedKeyIndex {
 public:
  SortedKeyIndex() = default;

  /// Copying is the snapshot operation: O(1), both sides keep the same
  /// nodes. It also flips both indexes into persistent (path-copying)
  /// mutation mode for good — an index that was *never* copied owns every
  /// node uniquely and mutates destructively instead, with no path copies
  /// at all (the unshared fast path a lone MatchSession runs on).
  SortedKeyIndex(const SortedKeyIndex& other);
  SortedKeyIndex& operator=(const SortedKeyIndex& other);
  SortedKeyIndex(SortedKeyIndex&& other) noexcept;
  SortedKeyIndex& operator=(SortedKeyIndex&& other) noexcept;

  /// Inserts one entry, O(log n) expected. An entry equal to a present
  /// one lands immediately after it (the stable position a duplicate
  /// would get from a stable sort).
  void Insert(IndexedEntry entry);

  /// Removes the entry matched exactly by key/side/seq; returns false
  /// when it was not present. O(log n) expected.
  bool Remove(const IndexedEntry& entry);

  /// Applies one batch of mutations: every entry of `removes` (matched
  /// exactly) leaves the index, every entry of `inserts` enters it.
  /// Either list may be empty; entries never present are ignored.
  /// Inserts are bulk-merged — the batch becomes a treap in O(m) (a
  /// Cartesian-tree build over the sorted batch) and is unioned in, for
  /// O(m · log(n/m)) expected instead of m separate root-to-leaf
  /// insertions.
  void Apply(const std::vector<IndexedEntry>& removes,
             std::vector<IndexedEntry> inserts);

  size_t size() const { return Count(root_.get()); }
  bool empty() const { return root_ == nullptr; }

  /// Rank query: the number of entries ordered strictly before `e` —
  /// the position of `e` when present, otherwise the position it would
  /// occupy (the gap a removed entry left behind). O(log n) expected.
  size_t LowerBound(const IndexedEntry& e) const;

  /// The entry at rank `pos` (0-based). O(log n) expected; scans over a
  /// rank range should use Span instead.
  const IndexedEntry& at(size_t pos) const;

  /// The entries of ranks [lo, min(hi, size())) in order, as stable
  /// pointers. O(log n + length) expected — the treap walk is amortized
  /// O(1) per step.
  std::vector<const IndexedEntry*> Span(size_t lo, size_t hi) const;

  /// Span into a caller-owned buffer (cleared first): the allocation-free
  /// variant for hot scan loops that walk many small windows.
  void SpanInto(size_t lo, size_t hi,
                std::vector<const IndexedEntry*>* out) const;

  /// All entries in order (test / debug helper). O(n).
  std::vector<IndexedEntry> Entries() const;

 private:
  using EntryPtr = std::shared_ptr<const IndexedEntry>;
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;
  struct Node {
    EntryPtr entry;
    uint64_t priority = 0;  ///< deterministic hash of the entry
    size_t count = 1;       ///< subtree size (this node included)
    NodePtr left;
    NodePtr right;
  };

  static size_t Count(const Node* n) { return n == nullptr ? 0 : n->count; }
  static NodePtr MakeNode(EntryPtr entry, uint64_t priority, NodePtr left,
                          NodePtr right);
  /// `n` with different children (path-copy step: the entry is shared).
  static NodePtr WithChildren(const Node& n, NodePtr left, NodePtr right);
  /// Splits into (entries < e, entries >= e).
  static void Split(const NodePtr& t, const IndexedEntry& e, NodePtr* less,
                    NodePtr* rest);
  /// Joins two treaps where every entry of `a` precedes every entry of
  /// `b`.
  static NodePtr Join(NodePtr a, NodePtr b);
  static NodePtr InsertNode(const NodePtr& t, EntryPtr entry,
                            uint64_t priority);
  static NodePtr RemoveNode(const NodePtr& t, const IndexedEntry& e,
                            bool* removed);
  /// Union of the (possibly shared) index with a freshly built (uniquely
  /// owned, mutable) batch treap: O(m · log(n/m)) expected, path-copying
  /// only nodes of the shared side — batch nodes are spliced in place and
  /// batch splits mutate destructively, so the allocation count tracks
  /// the split boundaries, not the batch size.
  static NodePtr UnionFresh(NodePtr shared, std::shared_ptr<Node> fresh);
  /// Destructive split of a uniquely owned treap into (< e, >= e).
  static void SplitFresh(std::shared_ptr<Node> t, const IndexedEntry& e,
                         std::shared_ptr<Node>* less,
                         std::shared_ptr<Node>* rest);
  /// Builds a treap from entries already in key order, O(m) (Cartesian
  /// tree over the deterministic priorities).
  static std::shared_ptr<Node> BuildFromSorted(
      std::vector<IndexedEntry> sorted);
  // Destructive counterparts for the unshared fast path: every node is
  // uniquely owned, so mutation needs no copies at all.
  static std::shared_ptr<Node> Mutable(NodePtr t) {
    // mdmatch-lint: allow(const-escape) the one sanctioned escape hatch:
    // callers hold the unshared fast path's uniqueness proof.
    return std::const_pointer_cast<Node>(std::move(t));
  }
  static std::shared_ptr<Node> JoinMut(std::shared_ptr<Node> a,
                                       std::shared_ptr<Node> b);
  static std::shared_ptr<Node> UnionMut(std::shared_ptr<Node> a,
                                        std::shared_ptr<Node> b);
  static std::shared_ptr<Node> InsertMut(std::shared_ptr<Node> t,
                                         std::shared_ptr<Node> node);
  static std::shared_ptr<Node> RemoveMut(std::shared_ptr<Node> t,
                                         const IndexedEntry& e,
                                         bool* removed);

  NodePtr root_;
  /// True once any copy of this index was ever taken: nodes may be
  /// reachable from that copy, so mutations must path-copy from then on.
  /// `mutable` because taking a snapshot of a const index still commits
  /// the source to persistent mode; atomic because two readers may
  /// snapshot one index concurrently (relaxed is enough — the flag only
  /// ever goes false -> true, and mutations are externally serialized
  /// with snapshotting by the owner's lock).
  mutable std::atomic<bool> shared_{false};
};

}  // namespace mdmatch::candidate

#endif  // MDMATCH_CANDIDATE_SORTED_INDEX_H_
