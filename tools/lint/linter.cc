#include "linter.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

namespace mdmatch::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `text` contains `word` with identifier boundaries on both
/// sides, starting the search at `from`; fills `*at` with the position.
bool FindWord(const std::string& text, const std::string& word, size_t from,
              size_t* at) {
  for (size_t pos = text.find(word, from); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      *at = pos;
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Per-line allow markers: `// mdmatch-lint: allow(<check>)`. A marker
/// covers its own line and the two below it (so a one-line comment can
/// cover a multi-line statement).
class AllowMap {
 public:
  explicit AllowMap(const std::vector<std::string>& raw_lines) {
    const std::string kMarker = "mdmatch-lint: allow(";
    for (size_t i = 0; i < raw_lines.size(); ++i) {
      size_t pos = raw_lines[i].find(kMarker);
      if (pos == std::string::npos) continue;
      pos += kMarker.size();
      const size_t close = raw_lines[i].find(')', pos);
      if (close == std::string::npos) continue;
      allowed_[i + 1].insert(raw_lines[i].substr(pos, close - pos));
    }
  }

  bool Allows(size_t line, const std::string& check) const {
    for (size_t l = line >= 2 ? line - 2 : 1; l <= line; ++l) {
      auto found = allowed_.find(l);
      if (found != allowed_.end() && found->second.count(check) > 0) {
        return true;
      }
    }
    return false;
  }

 private:
  std::map<size_t, std::set<std::string>> allowed_;  ///< line -> checks
};

/// The layer DAG, in rank order: a file may only include layers at or
/// below its own rank.
constexpr const char* kLayers[] = {"util",    "schema", "sim",
                                   "core",    "datagen", "match",
                                   "candidate", "api",  "stream"};

/// match/ forwarding headers over types relocated into candidate/ — the
/// one sanctioned back-edge (kept so old spellings stay alive).
constexpr const char* kLayeringExempt[] = {
    "src/match/block_index.h", "src/match/sorted_index.h",
    "src/match/sorted_neighborhood.h", "src/match/windowing.h"};

/// Frozen types: immutable after construction/publication. An entry with
/// an empty path_part applies everywhere; otherwise the declaration must
/// live in a file whose path contains path_part.
struct FrozenType {
  const char* name;
  const char* path_part;
};
constexpr FrozenType kFrozenTypes[] = {
    {"SessionGeneration", ""},  {"IndexSnapshot", ""},
    {"FrozenUnionFind", ""},    {"Node", "sorted_index"},
    {"Node", "block_index"},    {"Block", "block_index"},
    {"SharedMatchState", ""},   {"FrozenPairSet", ""},
    {"FrozenTrie", ""},         {"Node", "persistent_trie"},
};

struct Ctx {
  const std::string& path;
  const std::string& code;                  ///< stripped content
  const std::vector<std::string>& lines;    ///< stripped, per line
  const AllowMap& allow;
  std::vector<Finding>* out;

  void Report(size_t line, const std::string& check,
              const std::string& message) const {
    if (allow.Allows(line, check)) return;
    out->push_back({path, line, check, message});
  }
};

// ------------------------------------------------------------ raw-lock

void CheckRawLock(const Ctx& ctx) {
  // The annotated wrappers themselves are the implementation.
  if (EndsWith(ctx.path, "util/thread_annotations.h")) return;
  const char* kCallPatterns[] = {".lock()",   "->lock()",  ".unlock()",
                                 "->unlock()", ".Lock()",  "->Lock()",
                                 ".Unlock()", "->Unlock()"};
  const char* kStdTypes[] = {"std::mutex",
                             "std::timed_mutex",
                             "std::recursive_mutex",
                             "std::shared_mutex",
                             "std::lock_guard",
                             "std::unique_lock",
                             "std::scoped_lock",
                             "std::condition_variable",
                             "std::condition_variable_any"};
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    for (const char* pattern : kCallPatterns) {
      if (line.find(pattern) != std::string::npos) {
        ctx.Report(i + 1, "raw-lock",
                   std::string("raw ") + pattern +
                       " call: hold locks through util::MutexLock (RAII)");
        break;
      }
    }
    for (const char* type : kStdTypes) {
      size_t at = 0;
      if (FindWord(line, type, 0, &at)) {
        ctx.Report(i + 1, "raw-lock",
                   std::string(type) +
                       " bypasses the annotated wrappers: use util::Mutex"
                       " / util::MutexLock / util::CondVar");
        break;
      }
    }
  }
}

// ----------------------------------------------------------- naked-new

void CheckNakedNew(const Ctx& ctx) {
  if (ctx.path.rfind("src/", 0) != 0) return;  // src/ only
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    // `#include <new>` names the header, not the operator.
    if (line.find("#include") != std::string::npos) continue;
    size_t at = 0;
    if (FindWord(line, "new", 0, &at)) {
      ctx.Report(i + 1, "naked-new",
                 "naked new: use make_shared/make_unique (private-ctor "
                 "factories carry an allow marker)");
    }
    for (size_t pos = 0; FindWord(line, "delete", pos, &at);
         pos = at + 6) {
      // `= delete;` (deleted functions) is not a deallocation.
      size_t prev = at;
      while (prev > 0 && line[prev - 1] == ' ') --prev;
      if (prev > 0 && line[prev - 1] == '=') continue;
      ctx.Report(i + 1, "naked-new",
                 "naked delete: ownership belongs in smart pointers");
      break;
    }
  }
}

// -------------------------------------------------------- const-escape

void CheckConstEscape(const Ctx& ctx) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    if (line.find("const_cast<") != std::string::npos ||
        line.find("const_pointer_cast<") != std::string::npos) {
      ctx.Report(i + 1, "const-escape",
                 "const escape: frozen/snapshot state must stay frozen "
                 "(allow markers cover the sole-owner recycle paths)");
    }
  }
}

// ---------------------------------------------------------- tsa-escape

void CheckTsaEscape(const Ctx& ctx, const std::vector<std::string>& raw) {
  if (EndsWith(ctx.path, "util/thread_annotations.h")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    size_t at = 0;
    if (!FindWord(ctx.lines[i], "NO_THREAD_SAFETY_ANALYSIS", 0, &at)) {
      continue;
    }
    // Justified when this raw line or either of the two above carries a
    // comment (the justification itself).
    bool justified = false;
    for (size_t l = i >= 2 ? i - 2 : 0; l <= i && l < raw.size(); ++l) {
      if (raw[l].find("//") != std::string::npos ||
          raw[l].find("/*") != std::string::npos) {
        justified = true;
      }
    }
    if (!justified) {
      ctx.Report(i + 1, "tsa-escape",
                 "NO_THREAD_SAFETY_ANALYSIS without a justification "
                 "comment on the same or a preceding line");
    }
  }
}

// ------------------------------------------------------------ layering

void CheckLayering(const Ctx& ctx,
                   const std::vector<std::string>& raw_lines) {
  const int rank = LayerRank(ctx.path);
  if (rank < 0) return;
  for (const char* exempt : kLayeringExempt) {
    if (ctx.path == exempt) return;
  }
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    // The directive survives stripping; the quoted path does not, so it
    // is recovered from the raw line.
    if (ctx.lines[i].find("#include") == std::string::npos) continue;
    const std::string& line = raw_lines[i];
    const size_t open = line.find('"');
    if (open == std::string::npos) continue;
    const size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string header = line.substr(open + 1, close - open - 1);
    const size_t slash = header.find('/');
    if (slash == std::string::npos) continue;
    const std::string dir = header.substr(0, slash);
    for (size_t l = 0; l < std::size(kLayers); ++l) {
      if (dir != kLayers[l]) continue;
      if (static_cast<int>(l) > rank) {
        ctx.Report(i + 1, "layering",
                   "layering back-edge: " + ctx.path + " (layer " +
                       kLayers[rank] + ") includes \"" + header +
                       "\" from the higher layer " + dir);
      }
      break;
    }
  }
}

// ----------------------------------------------------- frozen-mutation

/// One top-level declaration inside a class body (method bodies and
/// nested braces collapsed away).
struct MemberDecl {
  std::string text;
  size_t line = 0;
};

/// The body of `struct/class <name> { ... }` as depth-1 declarations.
/// Returns false when the file has no such definition (forward
/// declarations don't count).
bool CollectMembers(const std::string& code, const std::string& name,
                    std::vector<MemberDecl>* members) {
  for (size_t pos = 0;;) {
    size_t at = 0;
    size_t s = std::string::npos, c = std::string::npos;
    if (FindWord(code, "struct", pos, &at)) s = at;
    if (FindWord(code, "class", pos, &at)) c = at;
    size_t key = std::min(s, c);
    if (key == std::string::npos) return false;
    pos = key + 1;
    // The declared name must follow the keyword.
    size_t p = key + (key == s ? 6 : 5);
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p]))) {
      ++p;
    }
    if (code.compare(p, name.size(), name) != 0 ||
        (p + name.size() < code.size() &&
         IsIdentChar(code[p + name.size()]))) {
      continue;
    }
    // Skip to the body (past any base clause); `;` first = forward decl.
    size_t q = p + name.size();
    while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
    if (q >= code.size() || code[q] == ';') continue;

    // Walk the body, collapsing nested braces (method bodies, nested
    // types, brace initializers) into `;` so every depth-1 declaration
    // ends with a semicolon.
    size_t line = 1 + static_cast<size_t>(
                          std::count(code.begin(), code.begin() + q, '\n'));
    MemberDecl current{"", line};
    int depth = 1;
    for (size_t k = q + 1; k < code.size() && depth > 0; ++k) {
      const char ch = code[k];
      if (ch == '\n') ++line;
      if (ch == '{') {
        ++depth;
        if (depth == 2) {
          // An inline body (or brace initializer) ends the declaration:
          // no depth-1 `;` follows an inline method.
          members->push_back(current);
          current = MemberDecl{"", line};
        }
        continue;
      }
      if (ch == '}') {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (ch == ';') {
        members->push_back(current);
        current = MemberDecl{"", line};
        continue;
      }
      if (current.text.empty() &&
          std::isspace(static_cast<unsigned char>(ch))) {
        current.line = line;  // anchor the decl at its first token
        continue;
      }
      current.text += ch == '\n' ? ' ' : ch;
    }
    if (!current.text.empty()) members->push_back(current);
    return true;
  }
}

void CheckFrozenMutation(const Ctx& ctx) {
  for (const FrozenType& frozen : kFrozenTypes) {
    if (frozen.path_part[0] != '\0' &&
        ctx.path.find(frozen.path_part) == std::string::npos) {
      continue;
    }
    std::vector<MemberDecl> members;
    if (!CollectMembers(ctx.code, frozen.name, &members)) continue;
    for (MemberDecl& m : members) {
      // Drop access-specifier prefixes glued onto the declaration.
      for (const char* spec : {"public:", "private:", "protected:"}) {
        size_t at = m.text.find(spec);
        while (at != std::string::npos) {
          m.text.erase(0, at + std::string(spec).size());
          at = m.text.find(spec);
        }
      }
      size_t at = 0;
      if (FindWord(m.text, "mutable", 0, &at)) {
        ctx.Report(m.line, "frozen-mutation",
                   frozen.name + std::string(" is frozen: no mutable "
                                             "members"));
        continue;
      }
      const size_t paren = m.text.find('(');
      if (paren == std::string::npos) continue;  // a field
      // Non-members and special members are fine: statics don't mutate
      // an instance; ctors/dtor/assignment run before/after the frozen
      // window; friends/usings aren't members.
      if (FindWord(m.text, "static", 0, &at) ||
          FindWord(m.text, "friend", 0, &at) ||
          FindWord(m.text, "using", 0, &at) ||
          FindWord(m.text, "typedef", 0, &at) ||
          FindWord(m.text, "operator", 0, &at) ||
          m.text.find('~') != std::string::npos) {
        continue;
      }
      // Constructor: the identifier before '(' is the type's own name.
      size_t name_end = paren;
      while (name_end > 0 &&
             std::isspace(static_cast<unsigned char>(m.text[name_end - 1]))) {
        --name_end;
      }
      size_t name_begin = name_end;
      while (name_begin > 0 && IsIdentChar(m.text[name_begin - 1])) {
        --name_begin;
      }
      if (m.text.substr(name_begin, name_end - name_begin) == frozen.name) {
        continue;
      }
      // A const member function has `const` after its parameter list.
      const size_t close = m.text.rfind(')');
      if (close != std::string::npos &&
          FindWord(m.text, "const", close, &at)) {
        continue;
      }
      ctx.Report(m.line, "frozen-mutation",
                 frozen.name +
                     std::string(" is frozen: no non-const member "
                                 "functions (found \"") +
                     m.text.substr(0, std::min<size_t>(60, m.text.size())) +
                     "\")");
    }
  }
}

// ------------------------------------------------------ hot-loop-alloc

/// Container spellings whose by-value appearance inside a loop body means
/// a fresh heap allocation every iteration.
constexpr const char* kHeapContainers[] = {
    "std::vector", "std::string",        "std::deque",
    "std::map",    "std::unordered_map", "std::set",
    "std::unordered_set", "std::list"};

/// Per stripped line: is any enclosing brace frame a for/while/do body?
/// Tracks a keyword->body handoff (parens of the loop head collapse to
/// zero before the `{`; a `;` first means a single-statement loop or a
/// do-while tail, neither of which can hold a declaration).
std::vector<bool> LoopBodyLines(const std::string& code, size_t num_lines) {
  std::vector<bool> in_loop(num_lines + 1, false);
  std::vector<bool> frames;  // brace stack: true = loop body
  size_t loop_frames = 0;
  bool pending = false;
  int pending_parens = 0;
  size_t line = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (loop_frames > 0 && line < num_lines) in_loop[line] = true;
    if (c == '\n') {
      ++line;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (i == 0 || !IsIdentChar(code[i - 1])) {
        const size_t len = j - i;
        if ((len == 3 && code.compare(i, 3, "for") == 0) ||
            (len == 5 && code.compare(i, 5, "while") == 0) ||
            (len == 2 && code.compare(i, 2, "do") == 0)) {
          pending = true;
          pending_parens = 0;
        }
      }
      i = j - 1;
      continue;
    }
    if (pending) {
      if (c == '(') {
        ++pending_parens;
      } else if (c == ')') {
        --pending_parens;
      } else if (c == ';' && pending_parens == 0) {
        pending = false;
      }
    }
    if (c == '{') {
      const bool is_loop_body = pending && pending_parens == 0;
      frames.push_back(is_loop_body);
      if (is_loop_body) {
        ++loop_frames;
        pending = false;
      }
    } else if (c == '}') {
      if (!frames.empty()) {
        if (frames.back()) --loop_frames;
        frames.pop_back();
      }
    }
  }
  return in_loop;
}

void CheckHotLoopAlloc(const Ctx& ctx) {
  // Scope: the per-pair evaluation layers, where a loop iteration is a
  // candidate pair (or an atom over one) and a malloc per iteration is a
  // measured throughput bug. Everything else allocates at will.
  if (ctx.path.rfind("src/match/", 0) != 0 &&
      ctx.path.rfind("src/sim/", 0) != 0) {
    return;
  }
  const std::vector<bool> in_loop =
      LoopBodyLines(ctx.code, ctx.lines.size());
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (!in_loop[i]) continue;
    const std::string& line = ctx.lines[i];
    for (const char* container : kHeapContainers) {
      bool flagged = false;
      size_t at = 0;
      for (size_t from = 0; !flagged && FindWord(line, container, from, &at);
           from = at + 1) {
        // Skip past a template argument list to the declarator position.
        size_t end = at + std::strlen(container);
        if (end < line.size() && line[end] == '<') {
          int depth = 1;
          ++end;
          while (end < line.size() && depth > 0) {
            if (line[end] == '<') ++depth;
            if (line[end] == '>') --depth;
            ++end;
          }
        }
        while (end < line.size() && line[end] == ' ') ++end;
        // References, pointers, nested names (iterators, statics) and
        // template-argument / parameter positions don't allocate here.
        if (end < line.size() &&
            (line[end] == '&' || line[end] == '*' || line[end] == ':' ||
             line[end] == '>' || line[end] == ',' || line[end] == ')')) {
          continue;
        }
        // A function-local static allocates once, not per iteration.
        size_t static_at = 0;
        if (FindWord(line, "static", 0, &static_at) && static_at < at) {
          continue;
        }
        ctx.Report(i + 1, "hot-loop-alloc",
                   std::string(container) +
                       " constructed inside a hot loop: hoist it out of "
                       "the loop or carve from util::Arena");
        flagged = true;
      }
      if (flagged) break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- API

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_close;  // )delim" of the active raw string
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(content[i - 1]))) {
          const size_t open = content.find('(', i + 2);
          if (open == std::string::npos) {
            out += c;
            break;
          }
          raw_close = ")" + content.substr(i + 2, open - i - 2) + "\"";
          state = State::kRawString;
          for (size_t k = i; k <= open; ++k) {
            out += content[k] == '\n' ? '\n' : ' ';
          }
          i = open;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (size_t k = 0; k < raw_close.size(); ++k) out += ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

int LayerRank(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return -1;
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return -1;
  const std::string layer = path.substr(4, slash - 4);
  for (size_t l = 0; l < std::size(kLayers); ++l) {
    if (layer == kLayers[l]) return static_cast<int>(l);
  }
  return -1;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content) {
  std::vector<Finding> findings;
  const std::string code = StripCommentsAndStrings(content);
  const std::vector<std::string> raw_lines = SplitLines(content);
  const std::vector<std::string> lines = SplitLines(code);
  const AllowMap allow(raw_lines);
  const Ctx ctx{path, code, lines, allow, &findings};
  CheckRawLock(ctx);
  CheckNakedNew(ctx);
  CheckConstEscape(ctx);
  CheckTsaEscape(ctx, raw_lines);
  CheckLayering(ctx, raw_lines);
  CheckFrozenMutation(ctx);
  CheckHotLoopAlloc(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.check < b.check;
            });
  return findings;
}

}  // namespace mdmatch::lint
