#ifndef MDMATCH_SIM_PHONETIC_H_
#define MDMATCH_SIM_PHONETIC_H_

#include <string>
#include <string_view>

namespace mdmatch::sim {

/// American Soundex code ("Robert" -> "R163"). Non-alphabetic characters
/// are ignored; an empty or all-symbol input encodes to "".
/// The paper's blocking experiment (Section 6, Exp-4) Soundex-encodes the
/// name attribute before building blocking keys.
std::string Soundex(std::string_view name);

/// NYSIIS phonetic code, a more precise alternative encoder often used for
/// blocking keys in record linkage toolkits.
std::string Nysiis(std::string_view name);

}  // namespace mdmatch::sim

#endif  // MDMATCH_SIM_PHONETIC_H_
