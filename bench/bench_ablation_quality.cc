// Ablation: the Section 5 quality model. Compares findRCKs output under
//   (a) the full model (diversity counter w1, length w2, accuracy w3),
//   (b) no diversity pressure (w1 = 0),
//   (c) no accuracy signal (ac ≡ 1),
//   (d) uniform costs (w1 = w2 = w3 = 0).
// Reported: how many distinct attribute pairs the RCK set covers (the
// model's diversity goal) and the blocking pairs completeness of the key
// built from the top two RCKs (the model's reliability goal).

#include <cstdio>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "match/blocking.h"
#include "match/evaluation.h"

using namespace mdmatch;
using namespace mdmatch::match;

namespace {

struct Config {
  const char* name;
  double w1, w2, w3;
  bool use_accuracy;
};

}  // namespace

int main() {
  sim::SimOpRegistry ops;
  datagen::CreditBillingOptions gen;
  gen.num_base = bench::FullRun() ? 20000 : 5000;
  gen.seed = 6000;
  datagen::CreditBillingData data = datagen::GenerateCreditBilling(gen, &ops);

  const Config configs[] = {
      {"full model", 1.0, 0.05, 3.0, true},
      {"no diversity (w1=0)", 0.0, 0.05, 3.0, true},
      {"no accuracy (ac=1)", 1.0, 0.05, 3.0, false},
      {"uniform costs", 0.0, 0.0, 0.0, false},
  };

  std::printf("== Ablation: quality model (K = %zu) ==\n", gen.num_base);
  TableWriter table({"configuration", "RCKs", "distinct pairs",
                     "blocking PC (%)", "RR (%)"});
  for (const Config& config : configs) {
    QualityModel quality(config.w1, config.w2, config.w3);
    quality.EstimateLengthsFromData(data.instance, data.mds, data.target);
    if (config.use_accuracy) {
      datagen::ApplyDefaultAccuracies(data.pair, data.target, &quality);
    }
    FindRcksOptions options;
    options.m = 10;
    FindRcksResult result =
        FindRcks(data.pair, ops, data.mds, data.target, options, &quality);

    std::set<AttrPair> distinct;
    for (const auto& key : result.rcks) {
      for (const auto& e : key.elements()) distinct.insert(e.attrs);
    }

    RelativeKey merged;
    for (size_t i = 0; i < result.rcks.size() && i < 2; ++i) {
      for (const auto& e : result.rcks[i].elements()) merged.AddUnique(e);
    }
    KeyFunction key = KeyFunction::FromKeyElementsByCost(
        merged, data.pair, quality, 3, {"fname", "mname", "lname"});
    CandidateQuality q = EvaluateCandidates(
        BlockCandidates(data.instance, key), data.instance);

    table.AddRow({config.name, std::to_string(result.rcks.size()),
                  std::to_string(distinct.size()),
                  TableWriter::Num(100 * q.pairs_completeness, 1),
                  TableWriter::Num(100 * q.reduction_ratio, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: the full model selects diverse, reliable attributes; "
      "ablating accuracy degrades blocking PC, ablating diversity narrows "
      "the covered attribute pairs.\n");
  return 0;
}
