#include "sim/phonetic.h"

#include <cctype>

#include "util/string_util.h"

namespace mdmatch::sim {

namespace {

// Soundex digit for an uppercase letter; 0 means "not coded" (vowels and
// H/W/Y).
char SoundexDigit(char c) {
  switch (c) {
    case 'B': case 'F': case 'P': case 'V':
      return '1';
    case 'C': case 'G': case 'J': case 'K': case 'Q': case 'S': case 'X':
    case 'Z':
      return '2';
    case 'D': case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M': case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

std::string LettersOnlyUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

std::string Soundex(std::string_view name) {
  std::string letters = LettersOnlyUpper(name);
  if (letters.empty()) return "";

  std::string code;
  code.push_back(letters[0]);
  char last_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char d = SoundexDigit(c);
    if (d != '0' && d != last_digit) {
      code.push_back(d);
    }
    // H and W are transparent: they do not reset the previous digit, so
    // consonants with the same code separated by H/W are still collapsed.
    if (c != 'H' && c != 'W') last_digit = d;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string Nysiis(std::string_view name) {
  std::string s = LettersOnlyUpper(name);
  if (s.empty()) return "";

  auto replace_prefix = [&](std::string_view from, std::string_view to) {
    if (StartsWith(s, from)) s = std::string(to) + s.substr(from.size());
  };
  auto replace_suffix = [&](std::string_view from, std::string_view to) {
    if (EndsWith(s, from)) {
      s = s.substr(0, s.size() - from.size()) + std::string(to);
    }
  };

  replace_prefix("MAC", "MCC");
  replace_prefix("KN", "NN");
  replace_prefix("K", "C");
  replace_prefix("PH", "FF");
  replace_prefix("PF", "FF");
  replace_prefix("SCH", "SSS");

  replace_suffix("EE", "Y");
  replace_suffix("IE", "Y");
  replace_suffix("DT", "D");
  replace_suffix("RT", "D");
  replace_suffix("RD", "D");
  replace_suffix("NT", "D");
  replace_suffix("ND", "D");

  auto is_vowel = [](char c) {
    return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U';
  };

  std::string key;
  key.push_back(s[0]);
  for (size_t i = 1; i < s.size(); ++i) {
    char c = s[i];
    // mdmatch-lint: allow(hot-loop-alloc) repl is at most 3 chars — SSO,
    // never touches the heap
    std::string repl(1, c);
    if (is_vowel(c)) {
      if (c == 'E' && i + 1 < s.size() && s[i + 1] == 'V') {
        repl = "AF";
        ++i;  // consume the V
      } else {
        repl = "A";
      }
    } else if (c == 'Q') {
      repl = "G";
    } else if (c == 'Z') {
      repl = "S";
    } else if (c == 'M') {
      repl = "N";
    } else if (c == 'K') {
      repl = (i + 1 < s.size() && s[i + 1] == 'N') ? "N" : "C";
    } else if (c == 'S' && i + 2 < s.size() && s.compare(i, 3, "SCH") == 0) {
      repl = "SSS";
      i += 2;
    } else if (c == 'P' && i + 1 < s.size() && s[i + 1] == 'H') {
      repl = "FF";
      ++i;
    } else if (c == 'H') {
      bool prev_vowel = is_vowel(s[i - 1]);
      bool next_vowel = i + 1 < s.size() && is_vowel(s[i + 1]);
      if (!prev_vowel || !next_vowel) repl.assign(1, s[i - 1]);
    } else if (c == 'W' && is_vowel(s[i - 1])) {
      repl.assign(1, s[i - 1]);
    }
    for (char rc : repl) {
      if (key.empty() || key.back() != rc) key.push_back(rc);
    }
  }

  // Trailing S / AY / A adjustments.
  if (key.size() > 1 && key.back() == 'S') key.pop_back();
  if (key.size() > 2 && EndsWith(key, "AY")) {
    key = key.substr(0, key.size() - 2) + "Y";
  }
  if (key.size() > 1 && key.back() == 'A') key.pop_back();
  return key;
}

}  // namespace mdmatch::sim
