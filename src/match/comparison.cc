#include "match/comparison.h"

#include <cassert>
#include <string>

namespace mdmatch::match {

Status ComparisonVector::CheckPatternWidth() const {
  if (elements_.size() > kMaxPatternWidth) {
    return Status::InvalidArgument(
        "comparison vector has " + std::to_string(elements_.size()) +
        " elements; agreement patterns support at most " +
        std::to_string(kMaxPatternWidth));
  }
  return Status::OK();
}

ComparisonVector ComparisonVector::FromKey(const RelativeKey& key) {
  return ComparisonVector(key.elements());
}

ComparisonVector ComparisonVector::UnionOfKeys(
    const std::vector<RelativeKey>& keys, size_t top_k) {
  RelativeKey merged;
  for (size_t i = 0; i < keys.size() && i < top_k; ++i) {
    for (const auto& e : keys[i].elements()) merged.AddUnique(e);
  }
  return ComparisonVector(merged.elements());
}

ComparisonVector ComparisonVector::AllWithOp(const ComparableLists& target,
                                             sim::SimOpId op) {
  std::vector<Conjunct> elems;
  elems.reserve(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    elems.push_back(Conjunct{target.pair_at(i), op});
  }
  return ComparisonVector(std::move(elems));
}

uint32_t ComparisonVector::ComparePattern(const sim::SimOpRegistry& ops,
                                          const Tuple& left,
                                          const Tuple& right) const {
  assert(elements_.size() <= kMaxPatternWidth &&
         "vector too wide for a pattern word; see CheckPatternWidth");
  uint32_t pattern = 0;
  for (size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    if (ops.Eval(e.op, left.value(e.attrs.left), right.value(e.attrs.right))) {
      pattern |= (1u << i);
    }
  }
  return pattern;
}

bool ComparisonVector::AllAgree(const sim::SimOpRegistry& ops,
                                const Tuple& left, const Tuple& right) const {
  for (const auto& e : elements_) {
    if (!ops.Eval(e.op, left.value(e.attrs.left),
                  right.value(e.attrs.right))) {
      return false;
    }
  }
  return true;
}

RelativeKey RelaxKeyForMatching(const RelativeKey& key,
                                sim::SimOpId relaxed_op) {
  RelativeKey out;
  for (const auto& e : key.elements()) {
    Conjunct relaxed = e;
    if (relaxed.op == sim::SimOpRegistry::kEq) relaxed.op = relaxed_op;
    out.AddUnique(relaxed);
  }
  return out;
}

std::vector<MatchRule> RelaxRulesForMatching(
    const std::vector<MatchRule>& rules, sim::SimOpId relaxed_op) {
  std::vector<MatchRule> out;
  out.reserve(rules.size());
  for (const auto& rule : rules) {
    out.push_back(RelaxKeyForMatching(rule, relaxed_op));
  }
  return out;
}

ComparisonVector RelaxVectorForMatching(const ComparisonVector& vector,
                                        sim::SimOpId relaxed_op) {
  std::vector<Conjunct> elems = vector.elements();
  for (auto& e : elems) {
    if (e.op == sim::SimOpRegistry::kEq) e.op = relaxed_op;
  }
  return ComparisonVector(std::move(elems));
}

bool RuleMatches(const MatchRule& rule, const sim::SimOpRegistry& ops,
                 const Tuple& left, const Tuple& right) {
  for (const auto& e : rule.elements()) {
    if (!ops.Eval(e.op, left.value(e.attrs.left),
                  right.value(e.attrs.right))) {
      return false;
    }
  }
  return true;
}

bool AnyRuleMatches(const std::vector<MatchRule>& rules,
                    const sim::SimOpRegistry& ops, const Tuple& left,
                    const Tuple& right) {
  for (const auto& rule : rules) {
    if (RuleMatches(rule, ops, left, right)) return true;
  }
  return false;
}

}  // namespace mdmatch::match
