#ifndef MDMATCH_MATCH_BLOCKING_H_
#define MDMATCH_MATCH_BLOCKING_H_

#include <vector>

#include "match/key_function.h"
#include "match/match_result.h"
#include "schema/instance.h"

namespace mdmatch::match {

/// \brief Blocking (paper Section 1 "Applications" and Exp-4): partition
/// both relations by the blocking key and emit every cross-relation pair
/// within a block.
CandidateSet BlockCandidates(const Instance& instance, const KeyFunction& key);

/// Multi-pass blocking: union of per-key candidates.
CandidateSet BlockCandidatesMultiPass(const Instance& instance,
                                      const std::vector<KeyFunction>& keys);

/// Block-size statistics (useful for diagnosing skewed keys).
struct BlockingStats {
  size_t num_blocks = 0;
  size_t largest_block = 0;   ///< tuples (both sides) in the largest block
  double avg_block = 0;
};
BlockingStats AnalyzeBlocks(const Instance& instance, const KeyFunction& key);

}  // namespace mdmatch::match

#endif  // MDMATCH_MATCH_BLOCKING_H_
