#include "candidate/sorted_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "candidate/radix.h"
#include "util/fnv.h"

namespace mdmatch::candidate {

namespace {

/// Deterministic treap priority: FNV-1a over the key bytes, then the
/// (side, seq) handle folded in through a splitmix64 finalizer. Hash
/// quality matters — the expected O(log n) bounds assume priorities act
/// like independent uniform draws.
uint64_t EntryPriority(const IndexedEntry& e) {
  const uint64_t hash = FnvMixString(kFnvOffsetBasis, e.key);
  return Mix64(hash ^ (static_cast<uint64_t>(e.side) << 32) ^ e.seq);
}

}  // namespace

SortedKeyIndex::SortedKeyIndex(const SortedKeyIndex& other)
    : root_(other.root_) {
  shared_.store(true, std::memory_order_relaxed);
  other.shared_.store(true, std::memory_order_relaxed);
}

SortedKeyIndex& SortedKeyIndex::operator=(const SortedKeyIndex& other) {
  root_ = other.root_;
  shared_.store(true, std::memory_order_relaxed);
  other.shared_.store(true, std::memory_order_relaxed);
  return *this;
}

SortedKeyIndex::SortedKeyIndex(SortedKeyIndex&& other) noexcept
    : root_(std::move(other.root_)) {
  shared_.store(other.shared_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

SortedKeyIndex& SortedKeyIndex::operator=(SortedKeyIndex&& other) noexcept {
  root_ = std::move(other.root_);
  shared_.store(other.shared_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

SortedKeyIndex::NodePtr SortedKeyIndex::MakeNode(EntryPtr entry,
                                                 uint64_t priority,
                                                 NodePtr left, NodePtr right) {
  auto node = std::make_shared<Node>();
  node->entry = std::move(entry);
  node->priority = priority;
  node->left = std::move(left);
  node->right = std::move(right);
  node->count = 1 + Count(node->left.get()) + Count(node->right.get());
  return node;
}

SortedKeyIndex::NodePtr SortedKeyIndex::WithChildren(const Node& n,
                                                     NodePtr left,
                                                     NodePtr right) {
  return MakeNode(n.entry, n.priority, std::move(left), std::move(right));
}

void SortedKeyIndex::Split(const NodePtr& t, const IndexedEntry& e,
                           NodePtr* less, NodePtr* rest) {
  if (t == nullptr) {
    *less = nullptr;
    *rest = nullptr;
    return;
  }
  if (*t->entry < e) {
    NodePtr right_less;
    Split(t->right, e, &right_less, rest);
    *less = WithChildren(*t, t->left, std::move(right_less));
  } else {
    NodePtr left_rest;
    Split(t->left, e, less, &left_rest);
    *rest = WithChildren(*t, std::move(left_rest), t->right);
  }
}

SortedKeyIndex::NodePtr SortedKeyIndex::Join(NodePtr a, NodePtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    return WithChildren(*a, a->left, Join(a->right, std::move(b)));
  }
  return WithChildren(*b, Join(std::move(a), b->left), b->right);
}

SortedKeyIndex::NodePtr SortedKeyIndex::InsertNode(const NodePtr& t,
                                                   EntryPtr entry,
                                                   uint64_t priority) {
  if (t == nullptr) {
    return MakeNode(std::move(entry), priority, nullptr, nullptr);
  }
  if (priority > t->priority) {
    NodePtr less;
    NodePtr rest;
    Split(t, *entry, &less, &rest);
    return MakeNode(std::move(entry), priority, std::move(less),
                    std::move(rest));
  }
  if (*entry < *t->entry) {
    return WithChildren(*t, InsertNode(t->left, std::move(entry), priority),
                        t->right);
  }
  // Equal entries go right: immediately after the present one, the stable
  // position.
  return WithChildren(*t, t->left,
                      InsertNode(t->right, std::move(entry), priority));
}

SortedKeyIndex::NodePtr SortedKeyIndex::RemoveNode(const NodePtr& t,
                                                   const IndexedEntry& e,
                                                   bool* removed) {
  if (t == nullptr) return nullptr;
  if (e < *t->entry) {
    NodePtr left = RemoveNode(t->left, e, removed);
    return *removed ? WithChildren(*t, std::move(left), t->right) : t;
  }
  if (*t->entry < e) {
    NodePtr right = RemoveNode(t->right, e, removed);
    return *removed ? WithChildren(*t, t->left, std::move(right)) : t;
  }
  *removed = true;
  return Join(t->left, t->right);
}

void SortedKeyIndex::Insert(IndexedEntry entry) {
  const uint64_t priority = EntryPriority(entry);
  if (!shared_.load(std::memory_order_relaxed)) {
    auto node = std::make_shared<Node>();
    node->priority = priority;
    node->entry = std::make_shared<const IndexedEntry>(std::move(entry));
    root_ = InsertMut(Mutable(std::move(root_)), std::move(node));
    return;
  }
  auto shared = std::make_shared<const IndexedEntry>(std::move(entry));
  root_ = InsertNode(root_, std::move(shared), priority);
}

bool SortedKeyIndex::Remove(const IndexedEntry& entry) {
  bool removed = false;
  if (!shared_.load(std::memory_order_relaxed)) {
    root_ = RemoveMut(Mutable(std::move(root_)), entry, &removed);
    return removed;
  }
  NodePtr next = RemoveNode(root_, entry, &removed);
  if (removed) root_ = std::move(next);
  return removed;
}

void SortedKeyIndex::SplitFresh(std::shared_ptr<Node> t,
                                const IndexedEntry& e,
                                std::shared_ptr<Node>* less,
                                std::shared_ptr<Node>* rest) {
  if (t == nullptr) {
    *less = nullptr;
    *rest = nullptr;
    return;
  }
  if (*t->entry < e) {
    std::shared_ptr<Node> right_less;
    // mdmatch-lint: allow(const-escape) SplitFresh precondition: every
    // node of `t` is uniquely owned (fresh batch), never published.
    SplitFresh(std::const_pointer_cast<Node>(t->right), e, &right_less,
               rest);
    t->right = std::move(right_less);
    t->count = 1 + Count(t->left.get()) + Count(t->right.get());
    *less = std::move(t);
  } else {
    std::shared_ptr<Node> left_rest;
    // mdmatch-lint: allow(const-escape) see above.
    SplitFresh(std::const_pointer_cast<Node>(t->left), e, less, &left_rest);
    t->left = std::move(left_rest);
    t->count = 1 + Count(t->left.get()) + Count(t->right.get());
    *rest = std::move(t);
  }
}

SortedKeyIndex::NodePtr SortedKeyIndex::UnionFresh(
    NodePtr shared, std::shared_ptr<Node> fresh) {
  if (fresh == nullptr) return shared;
  if (shared == nullptr) return fresh;
  if (fresh->priority >= shared->priority) {
    // The fresh root outranks the shared one: split the shared side
    // around it (path-copying) and splice the fresh node in place.
    NodePtr less;
    NodePtr rest;
    Split(shared, *fresh->entry, &less, &rest);
    // `fresh` subtrees are uniquely owned batch nodes (see SplitFresh).
    // mdmatch-lint: allow(const-escape)
    fresh->left = UnionFresh(std::move(less),
                             std::const_pointer_cast<Node>(fresh->left));
    // mdmatch-lint: allow(const-escape) see above.
    fresh->right = UnionFresh(std::move(rest),
                              std::const_pointer_cast<Node>(fresh->right));
    fresh->count =
        1 + Count(fresh->left.get()) + Count(fresh->right.get());
    return fresh;
  }
  // The shared root stays: one copied node, the fresh treap split
  // destructively across its children.
  std::shared_ptr<Node> fresh_less;
  std::shared_ptr<Node> fresh_rest;
  SplitFresh(std::move(fresh), *shared->entry, &fresh_less, &fresh_rest);
  return MakeNode(shared->entry, shared->priority,
                  UnionFresh(shared->left, std::move(fresh_less)),
                  UnionFresh(shared->right, std::move(fresh_rest)));
}

std::shared_ptr<SortedKeyIndex::Node> SortedKeyIndex::JoinMut(
    std::shared_ptr<Node> a, std::shared_ptr<Node> b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    a->right = JoinMut(Mutable(a->right), std::move(b));
    a->count = 1 + Count(a->left.get()) + Count(a->right.get());
    return a;
  }
  b->left = JoinMut(std::move(a), Mutable(b->left));
  b->count = 1 + Count(b->left.get()) + Count(b->right.get());
  return b;
}

std::shared_ptr<SortedKeyIndex::Node> SortedKeyIndex::UnionMut(
    std::shared_ptr<Node> a, std::shared_ptr<Node> b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority < b->priority) std::swap(a, b);
  std::shared_ptr<Node> b_less;
  std::shared_ptr<Node> b_rest;
  SplitFresh(std::move(b), *a->entry, &b_less, &b_rest);
  a->left = UnionMut(Mutable(a->left), std::move(b_less));
  a->right = UnionMut(Mutable(a->right), std::move(b_rest));
  a->count = 1 + Count(a->left.get()) + Count(a->right.get());
  return a;
}

std::shared_ptr<SortedKeyIndex::Node> SortedKeyIndex::InsertMut(
    std::shared_ptr<Node> t, std::shared_ptr<Node> node) {
  if (t == nullptr) return node;
  if (node->priority > t->priority) {
    std::shared_ptr<Node> less;
    std::shared_ptr<Node> rest;
    SplitFresh(std::move(t), *node->entry, &less, &rest);
    node->left = std::move(less);
    node->right = std::move(rest);
    node->count =
        1 + Count(node->left.get()) + Count(node->right.get());
    return node;
  }
  if (*node->entry < *t->entry) {
    t->left = InsertMut(Mutable(t->left), std::move(node));
  } else {
    t->right = InsertMut(Mutable(t->right), std::move(node));
  }
  t->count = 1 + Count(t->left.get()) + Count(t->right.get());
  return t;
}

std::shared_ptr<SortedKeyIndex::Node> SortedKeyIndex::RemoveMut(
    std::shared_ptr<Node> t, const IndexedEntry& e, bool* removed) {
  if (t == nullptr) return nullptr;
  if (e < *t->entry) {
    t->left = RemoveMut(Mutable(t->left), e, removed);
  } else if (*t->entry < e) {
    t->right = RemoveMut(Mutable(t->right), e, removed);
  } else {
    *removed = true;
    return JoinMut(Mutable(t->left), Mutable(t->right));
  }
  if (*removed) t->count = 1 + Count(t->left.get()) + Count(t->right.get());
  return t;
}

std::shared_ptr<SortedKeyIndex::Node> SortedKeyIndex::BuildFromSorted(
    std::vector<IndexedEntry> sorted) {
  // Cartesian-tree build over the rightmost spine: each entry joins as
  // the spine's new tail, adopting as left child everything it outranks.
  // Nodes are freshly allocated and unpublished, so mutating them here is
  // safe; counts are settled in one bottom-up pass at the end.
  std::vector<std::shared_ptr<Node>> spine;
  std::shared_ptr<Node> root;
  for (IndexedEntry& entry : sorted) {
    auto node = std::make_shared<Node>();
    node->priority = EntryPriority(entry);
    node->entry = std::make_shared<const IndexedEntry>(std::move(entry));
    std::shared_ptr<Node> displaced;
    while (!spine.empty() && spine.back()->priority < node->priority) {
      displaced = std::move(spine.back());
      spine.pop_back();
      // A popped node's subtree is final: its left was settled when it
      // was displaced itself, its right is the node popped just before.
      displaced->count = 1 + Count(displaced->left.get()) +
                         Count(displaced->right.get());
    }
    node->left = std::move(displaced);
    if (spine.empty()) {
      root = node;
    } else {
      spine.back()->right = node;
    }
    spine.push_back(std::move(node));
  }
  // The remaining spine is the tree's right edge; counts settle deepest
  // first (each node's right child is the spine node after it).
  for (size_t i = spine.size(); i-- > 0;) {
    Node& n = *spine[i];
    n.count = 1 + Count(n.left.get()) + Count(n.right.get());
  }
  return root;
}

void SortedKeyIndex::Apply(const std::vector<IndexedEntry>& removes,
                           std::vector<IndexedEntry> inserts) {
  for (const IndexedEntry& e : removes) Remove(e);
  if (inserts.empty()) return;
  // Sort the batch into (key, side, seq) order without a full-string
  // comparison sort: an integer sort on (side, seq) first, then a stable
  // byte radix on the keys — profiling showed the comparison sort of the
  // batch costing more string compares than the union merge itself.
  std::sort(inserts.begin(), inserts.end(),
            [](const IndexedEntry& a, const IndexedEntry& b) {
              if (a.side != b.side) return a.side < b.side;
              return a.seq < b.seq;
            });
  std::vector<uint32_t> perm(inserts.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  StableRadixSortByKey(perm,
                       [&](uint32_t i) -> const std::string& {
                         return inserts[i].key;
                       });
  std::vector<IndexedEntry> sorted;
  sorted.reserve(inserts.size());
  for (uint32_t i : perm) sorted.push_back(std::move(inserts[i]));
  std::shared_ptr<Node> batch = BuildFromSorted(std::move(sorted));
  root_ = shared_.load(std::memory_order_relaxed)
              ? UnionFresh(std::move(root_), std::move(batch))
              : NodePtr(UnionMut(Mutable(std::move(root_)),
                                 std::move(batch)));
}

size_t SortedKeyIndex::LowerBound(const IndexedEntry& e) const {
  size_t rank = 0;
  const Node* n = root_.get();
  while (n != nullptr) {
    if (*n->entry < e) {
      rank += Count(n->left.get()) + 1;
      n = n->right.get();
    } else {
      n = n->left.get();
    }
  }
  return rank;
}

const IndexedEntry& SortedKeyIndex::at(size_t pos) const {
  const Node* n = root_.get();
  assert(pos < Count(n) && "SortedKeyIndex::at out of range");
  while (true) {
    const size_t left_count = Count(n->left.get());
    if (pos < left_count) {
      n = n->left.get();
    } else if (pos == left_count) {
      return *n->entry;
    } else {
      pos -= left_count + 1;
      n = n->right.get();
    }
  }
}

std::vector<const IndexedEntry*> SortedKeyIndex::Span(size_t lo,
                                                      size_t hi) const {
  std::vector<const IndexedEntry*> out;
  SpanInto(lo, hi, &out);
  return out;
}

void SortedKeyIndex::SpanInto(size_t lo, size_t hi,
                              std::vector<const IndexedEntry*>* out_ptr)
    const {
  std::vector<const IndexedEntry*>& out = *out_ptr;
  out.clear();
  const size_t n = size();
  if (hi > n) hi = n;
  if (lo >= hi) return;
  out.reserve(hi - lo);

  // Descend to rank `lo`, stacking the nodes still to be visited (a node
  // is pushed when the walk goes left of it — it comes after its left
  // subtree — or when it is the target itself).
  std::vector<const Node*> stack;
  const Node* cur = root_.get();
  size_t skip = lo;
  while (cur != nullptr) {
    const size_t left_count = Count(cur->left.get());
    if (skip < left_count) {
      stack.push_back(cur);
      cur = cur->left.get();
    } else if (skip == left_count) {
      stack.push_back(cur);
      break;
    } else {
      skip -= left_count + 1;
      cur = cur->right.get();
    }
  }

  while (!stack.empty() && out.size() < hi - lo) {
    const Node* node = stack.back();
    stack.pop_back();
    out.push_back(node->entry.get());
    const Node* next = node->right.get();
    while (next != nullptr) {
      stack.push_back(next);
      next = next->left.get();
    }
  }
}

std::vector<IndexedEntry> SortedKeyIndex::Entries() const {
  std::vector<IndexedEntry> out;
  out.reserve(size());
  for (const IndexedEntry* e : Span(0, size())) out.push_back(*e);
  return out;
}

}  // namespace mdmatch::candidate
