// Tests for relative keys, the cover relation ≼ and apply(γ, φ)
// (paper Sections 2.2 and 5).

#include "core/rck.h"

#include <gtest/gtest.h>

#include "datagen/credit_billing.h"

namespace mdmatch {
namespace {

class RckTest : public testing::Test {
 protected:
  void SetUp() override {
    ops_ = sim::SimOpRegistry::Default();
    ex_ = datagen::MakeExample11(&ops_);
    dl_ = *ops_.Find("dl@0.80");
  }

  Conjunct C(const char* l, sim::SimOpId op, const char* r) {
    return Conjunct{{*ex_.pair.left().Find(l), *ex_.pair.right().Find(r)}, op};
  }

  sim::SimOpRegistry ops_;
  datagen::Example11Data ex_;
  sim::SimOpId dl_;
  static constexpr sim::SimOpId kEq = sim::SimOpRegistry::kEq;
};

TEST_F(RckTest, ContainsAndAddUnique) {
  RelativeKey key({C("LN", kEq, "LN")});
  EXPECT_TRUE(key.Contains(C("LN", kEq, "LN")));
  EXPECT_FALSE(key.Contains(C("LN", dl_, "LN")));  // operator matters
  key.AddUnique(C("LN", kEq, "LN"));
  EXPECT_EQ(key.length(), 1u);  // no duplicate
  key.AddUnique(C("FN", dl_, "FN"));
  EXPECT_EQ(key.length(), 2u);
}

TEST_F(RckTest, WithoutElement) {
  RelativeKey key({C("LN", kEq, "LN"), C("FN", dl_, "FN")});
  RelativeKey smaller = key.WithoutElement(0);
  EXPECT_EQ(smaller.length(), 1u);
  EXPECT_TRUE(smaller.Contains(C("FN", dl_, "FN")));
  EXPECT_FALSE(smaller.Contains(C("LN", kEq, "LN")));
}

TEST_F(RckTest, SameElementsIsOrderInsensitive) {
  RelativeKey a({C("LN", kEq, "LN"), C("FN", dl_, "FN")});
  RelativeKey b({C("FN", dl_, "FN"), C("LN", kEq, "LN")});
  EXPECT_TRUE(a.SameElements(b));
  RelativeKey c({C("LN", kEq, "LN")});
  EXPECT_FALSE(a.SameElements(c));
}

TEST_F(RckTest, CoversIsSubsetOfElements) {
  RelativeKey big({C("LN", kEq, "LN"), C("FN", dl_, "FN"),
                   C("addr", kEq, "post")});
  RelativeKey sub({C("FN", dl_, "FN"), C("LN", kEq, "LN")});
  RelativeKey other({C("tel", kEq, "phn")});
  EXPECT_TRUE(Covers(sub, big));
  EXPECT_FALSE(Covers(big, sub));
  EXPECT_FALSE(Covers(other, big));
  EXPECT_TRUE(Covers(big, big));
  EXPECT_TRUE(StrictlyCovers(sub, big));
  EXPECT_FALSE(StrictlyCovers(big, big));
}

TEST_F(RckTest, CoversDistinguishesOperators) {
  RelativeKey with_eq({C("FN", kEq, "FN"), C("LN", kEq, "LN")});
  RelativeKey with_dl({C("FN", dl_, "FN"), C("LN", kEq, "LN")});
  EXPECT_FALSE(Covers(with_eq, with_dl));
  EXPECT_FALSE(Covers(with_dl, with_eq));
}

TEST_F(RckTest, EmptyKeyCoversEverything) {
  RelativeKey empty;
  RelativeKey any({C("LN", kEq, "LN")});
  EXPECT_TRUE(Covers(empty, any));
  EXPECT_TRUE(Covers(empty, empty));
}

TEST_F(RckTest, ToMdUsesTargetAsRhs) {
  RelativeKey key({C("email", kEq, "email"), C("tel", kEq, "phn")});
  MatchingDependency md = key.ToMd(ex_.target);
  EXPECT_EQ(md.lhs().size(), 2u);
  EXPECT_EQ(md.rhs().size(), ex_.target.size());
  EXPECT_TRUE(md.Validate(ex_.pair).ok());
}

TEST_F(RckTest, ToStringMatchesPaperNotation) {
  RelativeKey key({C("email", kEq, "email"), C("tel", kEq, "phn")});
  EXPECT_EQ(key.ToString(ex_.pair, ops_),
            "([email, tel], [email, phn] || [=, =])");
}

// ----------------------------------------------------------------- apply

TEST_F(RckTest, ApplyReplacesRhsPairsWithLhs) {
  // γ = ([tel, email] || [=, =]); ϕ2: tel=phn -> addr<=>post does not touch
  // γ (no overlap), so apply adds ϕ2's LHS only if absent.
  RelativeKey gamma({C("tel", kEq, "phn"), C("email", kEq, "email")});
  RelativeKey applied = Apply(gamma, ex_.mds[1]);  // ϕ2
  // RHS(ϕ2) = (addr, post) not in γ; LHS(ϕ2) = tel=phn already present.
  EXPECT_TRUE(applied.SameElements(gamma));
}

TEST_F(RckTest, ApplyRemovesCoveredPairRegardlessOfOperator) {
  // γ contains (addr, post) with equality; ϕ2's RHS is (addr, post):
  // apply removes it and adds tel=phn.
  RelativeKey gamma({C("addr", kEq, "post"), C("email", kEq, "email")});
  RelativeKey applied = Apply(gamma, ex_.mds[1]);
  EXPECT_FALSE(applied.Contains(C("addr", kEq, "post")));
  EXPECT_TRUE(applied.Contains(C("tel", kEq, "phn")));
  EXPECT_TRUE(applied.Contains(C("email", kEq, "email")));
  EXPECT_EQ(applied.length(), 2u);
}

TEST_F(RckTest, ApplyOnPaperExampleChain) {
  // Example 5.1 flavor: applying ϕ1 to the identity key yields the rck1
  // shape ([LN, addr, FN] || [=, =, ~dl]) plus the untouched Y elements.
  std::vector<Conjunct> identity;
  for (size_t i = 0; i < ex_.target.size(); ++i) {
    identity.push_back(Conjunct{ex_.target.pair_at(i), kEq});
  }
  RelativeKey gamma(identity);
  RelativeKey applied = Apply(gamma, ex_.mds[0]);  // ϕ1 (RHS = all of Y)
  // All Y pairs are in RHS(ϕ1): removed; LHS(ϕ1) added.
  EXPECT_EQ(applied.length(), 3u);
  EXPECT_TRUE(applied.Contains(C("LN", kEq, "LN")));
  EXPECT_TRUE(applied.Contains(C("addr", kEq, "post")));
  EXPECT_TRUE(applied.Contains(C("FN", dl_, "FN")));
}

TEST_F(RckTest, ApplyDeduplicatesAddedConjuncts) {
  RelativeKey gamma({C("LN", kEq, "LN"), C("tel", kEq, "phn")});
  // ϕ3: email=email -> FN,LN identified. (LN, LN) is in RHS(ϕ3)? No —
  // RHS(ϕ3) = {(FN,FN), (LN,LN)}: LN removed, email added.
  RelativeKey applied = Apply(gamma, ex_.mds[2]);
  EXPECT_FALSE(applied.Contains(C("LN", kEq, "LN")));
  EXPECT_TRUE(applied.Contains(C("email", kEq, "email")));
  EXPECT_TRUE(applied.Contains(C("tel", kEq, "phn")));
  EXPECT_EQ(applied.length(), 2u);
}

}  // namespace
}  // namespace mdmatch
