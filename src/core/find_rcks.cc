#include "core/find_rcks.h"

#include <algorithm>
#include <atomic>
#include <set>

namespace mdmatch {

namespace {

/// Builds the trivially deducible key (Y1, Y2 ‖ [=, ..., =]) of Fig. 7
/// line 3.
RelativeKey IdentityKey(const ComparableLists& target) {
  std::vector<Conjunct> elems;
  elems.reserve(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    elems.push_back(Conjunct{target.pair_at(i), sim::SimOpRegistry::kEq});
  }
  return RelativeKey(std::move(elems));
}

bool DeducesKey(const SchemaPair& pair, const sim::SimOpRegistry& ops,
                const MdSet& sigma, const ComparableLists& target,
                const RelativeKey& key, size_t* closure_calls) {
  if (closure_calls) ++*closure_calls;
  return Deduces(pair, ops, sigma, key.ToMd(target));
}

}  // namespace

std::vector<AttrPair> Pairing(const MdSet& sigma,
                              const ComparableLists& target) {
  std::set<AttrPair> pairs;
  for (size_t i = 0; i < target.size(); ++i) pairs.insert(target.pair_at(i));
  for (const auto& md : sigma) {
    for (const auto& c : md.lhs()) pairs.insert(c.attrs);
    for (const auto& p : md.rhs()) pairs.insert(p);
  }
  return {pairs.begin(), pairs.end()};
}

RelativeKey Minimize(const SchemaPair& pair, const sim::SimOpRegistry& ops,
                     const MdSet& sigma, const ComparableLists& target,
                     const QualityModel& quality, RelativeKey key,
                     size_t* closure_calls) {
  // Sort element positions by descending cost, then try removals starting
  // from the costliest (Fig. 7, procedure minimize). A single pass
  // suffices: if key \ V is not a key, no subset of it is one either
  // (LHS augmentation is monotone, Lemma 3.1).
  std::vector<size_t> order(key.length());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return quality.Cost(key.elements()[a].attrs) >
           quality.Cost(key.elements()[b].attrs);
  });

  // Track by element value (positions shift as we erase).
  std::vector<Conjunct> victims;
  victims.reserve(order.size());
  for (size_t pos : order) victims.push_back(key.elements()[pos]);

  for (const auto& victim : victims) {
    // Locate the victim in the current key.
    size_t idx = key.length();
    for (size_t i = 0; i < key.length(); ++i) {
      if (key.elements()[i] == victim) {
        idx = i;
        break;
      }
    }
    if (idx == key.length()) continue;
    RelativeKey candidate = key.WithoutElement(idx);
    if (DeducesKey(pair, ops, sigma, target, candidate, closure_calls)) {
      key = std::move(candidate);
    }
  }
  return key;
}

namespace {
std::atomic<size_t> g_find_rcks_invocations{0};
}  // namespace

size_t FindRcksInvocationCount() {
  return g_find_rcks_invocations.load(std::memory_order_relaxed);
}

FindRcksResult FindRcks(const SchemaPair& pair, const sim::SimOpRegistry& ops,
                        const MdSet& sigma, const ComparableLists& target,
                        const FindRcksOptions& options,
                        QualityModel* quality) {
  g_find_rcks_invocations.fetch_add(1, std::memory_order_relaxed);
  FindRcksResult result;
  size_t c = 0;

  // Lines 1-2: collect the pair universe and reset diversity counters.
  quality->ResetCounts();

  auto increment_counts = [&](const RelativeKey& key) {
    for (const auto& e : key.elements()) quality->IncrementCount(e.attrs);
  };
  auto covered = [&](const RelativeKey& candidate) {
    for (const auto& g : result.rcks) {
      if (Covers(g, candidate)) return true;
    }
    return false;
  };

  // Lines 3-4: seed Γ with the minimized identity key.
  RelativeKey gamma0 = Minimize(pair, ops, sigma, target, *quality,
                                IdentityKey(target), &result.closure_calls);
  result.rcks.push_back(gamma0);
  increment_counts(gamma0);

  // Lines 5-15: worklist over the growing Γ; for each γ, apply every MD in
  // ascending LHS-cost order (re-ranked after each addition, since the
  // diversity counters change the costs).
  for (size_t gi = 0; gi < result.rcks.size(); ++gi) {
    std::vector<const MatchingDependency*> remaining;
    remaining.reserve(sigma.size());
    for (const auto& md : sigma) remaining.push_back(&md);

    while (!remaining.empty()) {
      // sortMD: pick the cheapest remaining MD under the current costs.
      size_t best = 0;
      double best_cost = quality->LhsCost(*remaining[0]);
      for (size_t i = 1; i < remaining.size(); ++i) {
        double cost = quality->LhsCost(*remaining[i]);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      const MatchingDependency* phi = remaining[best];
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));

      RelativeKey candidate = Apply(result.rcks[gi], *phi);
      if (covered(candidate)) continue;

      RelativeKey minimized =
          Minimize(pair, ops, sigma, target, *quality, std::move(candidate),
                   &result.closure_calls);
      // After minimization only an exact duplicate can coincide with an
      // existing RCK (no strictly smaller key exists below a minimal one).
      bool duplicate = false;
      for (const auto& g : result.rcks) {
        if (g.SameElements(minimized)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      result.rcks.push_back(minimized);
      increment_counts(minimized);
      ++c;
      if (!options.exhaustive && c == options.m) return result;
    }
  }
  // Worklist exhausted: Γ is complete w.r.t. Σ (Proposition 5.1).
  result.complete = true;
  return result;
}

FindRcksResult FindRcks(const SchemaPair& pair, const sim::SimOpRegistry& ops,
                        const MdSet& sigma, const ComparableLists& target,
                        size_t m) {
  QualityModel quality;
  FindRcksOptions options;
  options.m = m;
  return FindRcks(pair, ops, sigma, target, options, &quality);
}

std::vector<RelativeKey> EnumerateAllRcksBruteForce(
    const SchemaPair& pair, const sim::SimOpRegistry& ops, const MdSet& sigma,
    const ComparableLists& target) {
  // Element universe: (Y-pair, =) for every target position, plus every LHS
  // conjunct of Σ. This is exactly the space reachable by apply() chains
  // from the identity key, i.e. the space Proposition 5.1's completeness
  // speaks about (see find_rcks.h).
  std::set<Conjunct> universe_set;
  for (size_t i = 0; i < target.size(); ++i) {
    universe_set.insert(Conjunct{target.pair_at(i), sim::SimOpRegistry::kEq});
  }
  for (const auto& md : sigma) {
    for (const auto& c : md.lhs()) universe_set.insert(c);
  }
  std::vector<Conjunct> universe(universe_set.begin(), universe_set.end());
  size_t u = universe.size();
  if (u > 20) return {};  // guard: tests only

  std::vector<uint32_t> keys;  // bitmasks of deducible subsets
  for (uint32_t mask = 0; mask < (1u << u); ++mask) {
    std::vector<Conjunct> elems;
    for (size_t i = 0; i < u; ++i) {
      if (mask & (1u << i)) elems.push_back(universe[i]);
    }
    RelativeKey key(std::move(elems));
    if (Deduces(pair, ops, sigma, key.ToMd(target))) keys.push_back(mask);
  }
  std::vector<RelativeKey> minimal;
  for (uint32_t mask : keys) {
    bool is_minimal = true;
    for (uint32_t other : keys) {
      if (other != mask && (other & mask) == other) {
        is_minimal = false;
        break;
      }
    }
    if (!is_minimal) continue;
    std::vector<Conjunct> elems;
    for (size_t i = 0; i < u; ++i) {
      if (mask & (1u << i)) elems.push_back(universe[i]);
    }
    minimal.emplace_back(std::move(elems));
  }
  return minimal;
}

}  // namespace mdmatch
