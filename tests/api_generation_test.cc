// Tests for generation-published session state: queries are lock-free
// reads of an immutable SessionGeneration, so every observed view must be
// internally consistent — matches, clusters and corpus all from the same
// published version, never a torn mix — even while a flusher thread
// churns the corpus. The consistency oracle is the session's own
// equivalence contract: a view's Matches() must be exactly what one-shot
// Executor::Run produces over that same view's Corpus().

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/executor.h"
#include "api/plan.h"
#include "api/session.h"
#include "datagen/credit_billing.h"
#include "match/clustering.h"

namespace mdmatch::api {
namespace {

std::vector<std::pair<uint32_t, uint32_t>> SortedPairs(
    const match::PairSet& set) {
  auto pairs = set.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

class ApiGenerationTest : public testing::Test {
 protected:
  void SetUp() override {
    datagen::CreditBillingOptions gen;
    gen.num_base = 120;
    gen.seed = 515;
    data_ = datagen::GenerateCreditBilling(gen, &ops_);
  }

  Result<PlanPtr> BuildPlan(PlanOptions options = {}) {
    return PlanBuilder(data_.pair, data_.target, &ops_)
        .WithSigma(data_.mds)
        .WithOptions(options)
        .WithTrainingInstance(&data_.instance)
        .Build();
  }

  sim::SimOpRegistry ops_;
  datagen::CreditBillingData data_;
};

TEST_F(ApiGenerationTest, GenerationNumbersAdvanceOnlyOnNonEmptyFlushes) {
  auto plan = BuildPlan();
  ASSERT_TRUE(plan.ok());
  MatchSession session(*plan);
  EXPECT_EQ(session.generation(), 0u);

  // Empty flush: nothing published.
  auto empty = session.Flush();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->generation, 0u);
  EXPECT_EQ(session.generation(), 0u);

  ASSERT_TRUE(session.Upsert(0, data_.instance.left().tuple(0)).ok());
  auto first = session.Flush();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(session.generation(), 1u);
  EXPECT_EQ(session.View().generation(), 1u);

  ASSERT_TRUE(session.Upsert(1, data_.instance.right().tuple(0)).ok());
  auto second = session.Flush();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->generation, 2u);

  // Another empty flush reports the standing generation.
  auto still = session.Flush();
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->generation, 2u);
}

TEST_F(ApiGenerationTest, ViewPinsOneGenerationAcrossLaterFlushes) {
  auto plan = BuildPlan();
  ASSERT_TRUE(plan.ok());
  MatchSession session(*plan);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(session.Upsert(0, data_.instance.left().tuple(i)).ok());
    ASSERT_TRUE(session.Upsert(1, data_.instance.right().tuple(i)).ok());
  }
  ASSERT_TRUE(session.Flush().ok());

  SessionView pinned = session.View();
  const auto pinned_matches = SortedPairs(pinned.Matches());
  const Instance pinned_corpus = pinned.Corpus();

  // The session moves on: more inserts, an update wave, removals.
  for (size_t i = 40; i < 80; ++i) {
    ASSERT_TRUE(session.Upsert(0, data_.instance.left().tuple(i)).ok());
    ASSERT_TRUE(session.Upsert(1, data_.instance.right().tuple(i)).ok());
  }
  ASSERT_TRUE(session.Flush().ok());
  for (size_t i = 0; i < 10; ++i) {
    Tuple t = data_.instance.left().tuple(i);
    t.set_value(0, t.value(0) + "x");
    ASSERT_TRUE(session.Upsert(0, std::move(t)).ok());
    ASSERT_TRUE(
        session.Remove(1, data_.instance.right().tuple(i).id()).ok());
  }
  ASSERT_TRUE(session.Flush().ok());

  // The pinned view is bit-identical to what it was.
  EXPECT_EQ(pinned.left_size(), 40u);
  EXPECT_EQ(pinned.right_size(), 40u);
  EXPECT_EQ(SortedPairs(pinned.Matches()), pinned_matches);
  EXPECT_EQ(pinned.Corpus().left().size(), pinned_corpus.left().size());
  // And the session's own view moved on.
  EXPECT_EQ(session.right_size(), 70u);
  EXPECT_GT(session.generation(), pinned.generation());
}

/// The reader-threads-vs-flusher property: while one thread streams
/// deltas (inserts, updates, removals) through Flush, reader threads
/// continuously acquire views and check that each one is internally
/// consistent — its matches are exactly a one-shot Executor::Run over its
/// corpus, its cluster handles agree with its Clusters(), and generation
/// numbers never go backwards.
void RunReadersVsFlusher(const PlanPtr& plan,
                         const datagen::CreditBillingData& data) {
  MatchSession session(plan);
  ExecutorOptions oracle_options;
  oracle_options.evaluate_quality = false;
  Executor oracle(plan, oracle_options);

  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::string> failures(kReaders);
  std::array<std::atomic<size_t>, kReaders> generations_seen{};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_generation = 0;
      uint64_t last_checked = UINT64_MAX;
      while (!done.load(std::memory_order_acquire)) {
        SessionView view = session.View();
        if (view.generation() < last_generation) {
          failures[t] = "generation went backwards";
          return;
        }
        last_generation = view.generation();
        if (view.generation() == last_checked) continue;
        last_checked = view.generation();
        generations_seen[t].fetch_add(1, std::memory_order_relaxed);

        // Consistency oracle: matches <=> corpus from one version.
        Instance corpus = view.Corpus();
        auto run = oracle.Run(corpus);
        if (!run.ok()) {
          failures[t] = "oracle run failed: " + run.status().ToString();
          return;
        }
        auto view_pairs = view.Matches().pairs();
        std::sort(view_pairs.begin(), view_pairs.end());
        auto oracle_pairs = run->matches.pairs();
        std::sort(oracle_pairs.begin(), oracle_pairs.end());
        if (view_pairs != oracle_pairs) {
          failures[t] = "torn view at generation " +
                        std::to_string(view.generation()) + ": matches != " +
                        "one-shot run over the same view's corpus";
          return;
        }

        // Clusters <=> cluster handles from the same version.
        match::Clustering clusters = view.Clusters();
        for (size_t i = 1; i < corpus.left().size(); ++i) {
          const TupleId a = corpus.left().tuple(i - 1).id();
          const TupleId b = corpus.left().tuple(i).id();
          auto same = view.SameCluster(0, a, 0, b);
          if (!same.ok()) {
            failures[t] = "SameCluster failed for live ids";
            return;
          }
          const bool expected =
              clusters.ClusterOf({0, static_cast<uint32_t>(i - 1)}) ==
              clusters.ClusterOf({0, static_cast<uint32_t>(i)});
          if (*same != expected) {
            failures[t] = "cluster handles disagree with Clusters() at "
                          "generation " +
                          std::to_string(view.generation());
            return;
          }
        }
      }
    });
  }

  // The flusher: insert waves, then an update + removal wave, repeated.
  const size_t n = data.instance.left().size();
  size_t cursor = 0;
  for (int round = 0; round < 12; ++round) {
    const size_t hi = std::min(n, cursor + 15);
    for (size_t i = cursor; i < hi; ++i) {
      ASSERT_TRUE(session.Upsert(0, data.instance.left().tuple(i)).ok());
      ASSERT_TRUE(session.Upsert(1, data.instance.right().tuple(i)).ok());
    }
    cursor = hi;
    ASSERT_TRUE(session.Flush().ok());
    if (round % 3 == 2 && cursor > 8) {
      for (size_t i = 0; i < 5; ++i) {
        Tuple t = data.instance.left().tuple(i + round);
        t.set_value(1, t.value(1) + "q");
        ASSERT_TRUE(session.Upsert(0, std::move(t)).ok());
      }
      ASSERT_TRUE(
          session.Remove(1, data.instance.right().tuple(round).id()).ok());
      ASSERT_TRUE(session.Flush().ok());
    }
  }
  // On a small machine the flusher can finish before a reader was ever
  // scheduled: hold the session steady until every reader verified at
  // least one generation, so the test always checks what it claims to.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all_seen = true;
    for (size_t t = 0; t < kReaders; ++t) {
      all_seen = all_seen &&
                 generations_seen[t].load(std::memory_order_relaxed) > 0;
    }
    if (all_seen) break;
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  for (size_t t = 0; t < kReaders; ++t) {
    EXPECT_EQ(failures[t], "") << "reader " << t;
    // Every reader observed and verified at least one generation.
    EXPECT_GT(generations_seen[t].load(), 0u) << "reader " << t;
  }

  // Final state sanity after all concurrency: still the equivalence
  // contract.
  auto final_run = oracle.Run(session.Corpus());
  ASSERT_TRUE(final_run.ok());
  EXPECT_EQ(SortedPairs(session.Matches()),
            SortedPairs(final_run->matches));
}

TEST_F(ApiGenerationTest, ReadersSeeConsistentGenerationsWindowing) {
  PlanOptions options;
  options.candidates = PlanOptions::Candidates::kWindowing;
  auto plan = BuildPlan(options);
  ASSERT_TRUE(plan.ok());
  RunReadersVsFlusher(*plan, data_);
}

TEST_F(ApiGenerationTest, ReadersSeeConsistentGenerationsBlocking) {
  PlanOptions options;
  options.candidates = PlanOptions::Candidates::kBlocking;
  auto plan = BuildPlan(options);
  ASSERT_TRUE(plan.ok());
  RunReadersVsFlusher(*plan, data_);
}

TEST_F(ApiGenerationTest, QueriesAnswerFromPublishedStateNotStaged) {
  auto plan = BuildPlan();
  ASSERT_TRUE(plan.ok());
  MatchSession session(*plan);
  ASSERT_TRUE(session.Upsert(0, data_.instance.left().tuple(0)).ok());
  // Staged but unflushed: queries see the (empty) published generation.
  EXPECT_EQ(session.left_size(), 0u);
  EXPECT_EQ(session.pending_ops(), 1u);
  EXPECT_FALSE(session.ClusterOf(0, data_.instance.left().tuple(0).id()).ok());
  ASSERT_TRUE(session.Flush().ok());
  EXPECT_EQ(session.left_size(), 1u);
  EXPECT_TRUE(session.ClusterOf(0, data_.instance.left().tuple(0).id()).ok());
}

}  // namespace
}  // namespace mdmatch::api
