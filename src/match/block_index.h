#ifndef MDMATCH_MATCH_BLOCK_INDEX_H_
#define MDMATCH_MATCH_BLOCK_INDEX_H_

// Moved: the persistent blocking index lives in the candidate-generation
// subsystem (src/candidate/) since the snapshot refactor. This header
// keeps the old mdmatch::match spelling alive for existing includers.

#include "candidate/block_index.h"

namespace mdmatch::match {

using candidate::BlockIndex;

}  // namespace mdmatch::match

#endif  // MDMATCH_MATCH_BLOCK_INDEX_H_
