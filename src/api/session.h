#ifndef MDMATCH_API_SESSION_H_
#define MDMATCH_API_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/plan.h"
#include "candidate/catalog.h"
#include "candidate/indexed_entry.h"
#include "candidate/snapshot.h"
#include "match/clustering.h"
#include "match/compiled_eval.h"
#include "match/match_result.h"
#include "match/pair_cache.h"
#include "match/persistent_pairs.h"
#include "schema/instance.h"
#include "util/arena.h"
#include "util/persistent_trie.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mdmatch::api {

/// Runtime knobs of a MatchSession.
struct SessionOptions {
  /// Worker threads for rule evaluation and for sharded flushes.
  /// Results are identical for every thread count.
  size_t num_threads = 1;
  /// Minimum candidate pairs per worker in the (unsharded) evaluation
  /// stage; below it the stage stays sequential. 0 disables the scaling.
  size_t min_pairs_per_thread = 2048;
  /// A flush whose delta (upserts + removes) reaches this many records is
  /// executed shard-wise: the derived-key order is split into contiguous
  /// ranges, one worker per range, with windows crossing a shard boundary
  /// handled by the owner of the left endpoint; candidate generation and
  /// rule evaluation fuse per shard and only match reports are merged.
  /// 0 disables sharding (the delta path is always used).
  size_t shard_min_delta = 4096;
  /// Entry budget of the per-session pair-decision cache (0 disables).
  /// Flushes re-examine pairs around insertions, removal gaps and drifted
  /// windows; cached decisions — keyed by (TupleId, value fingerprint) on
  /// both sides — let those re-examinations skip rule evaluation when the
  /// records did not change. Results are identical with the cache on or
  /// off, up to 64-bit fingerprint collisions on a recycled id (see
  /// match/pair_cache.h).
  size_t pair_cache_capacity = 0;
  /// Doorkeeper admission for the pair-decision cache: a pair's decision
  /// enters the LRU only on its second miss, so one-hit-wonder keys from
  /// id-recycling churn stop evicting the hot working set (compare
  /// IngestReport::cache_evictions with and without). Ignored without
  /// pair_cache_capacity; never changes results.
  bool cache_doorkeeper = false;
  /// Route delta-path rule evaluation through the SoA batch evaluator
  /// (pair strips, SIMD atom kernels, the session's reusable arena) when
  /// the compiled evaluator reports the batch path profitable (an
  /// equality-only atom basis — see CompiledEvaluator::BatchProfitable).
  /// Decisions are bit-identical to the scalar path. Sharded flushes
  /// always use the scalar per-shard loops regardless.
  bool batch_eval = true;
  /// Optional shared index catalog. Sessions created with the same
  /// catalog, an identical compiled plan (keyed by PlanFingerprint) and
  /// the same corpus_id attach to one candidate::IndexCatalog entry: the
  /// first session to flush a given delta builds the next index snapshot,
  /// every other session adopts it (IngestReport::index_reused), so index
  /// construction is paid once per corpus instead of once per session.
  /// Sharing pays off when the sessions ingest identical delta streams;
  /// divergence is detected by delta fingerprint and degrades to private
  /// index builds — results are bit-identical either way.
  std::shared_ptr<candidate::IndexCatalog> catalog;
  /// Names the corpus within the catalog (ignored without `catalog`).
  std::string corpus_id;
};

/// What one Flush did.
struct IngestReport {
  size_t upserted = 0;         ///< records inserted or updated
  size_t removed = 0;          ///< records removed from the corpus
  size_t pairs_evaluated = 0;  ///< candidate pairs the matcher inspected
  size_t matches_added = 0;
  size_t matches_dropped = 0;  ///< retired with their records or drifted
                               ///< out of every window
  size_t shards_used = 1;      ///< 1 = delta path, >1 = sharded flush
  size_t cache_hits = 0;       ///< pairs decided from the pair-decision cache
  size_t cache_lookups = 0;    ///< pair-cache probes this flush (hits+misses)
  size_t cache_evictions = 0;  ///< pair-cache LRU entries evicted this flush
  /// True when this flush adopted an index snapshot another session already
  /// built for the same (base version, delta) through a shared
  /// candidate::IndexCatalog entry, skipping the merge entirely.
  bool index_reused = false;
  /// True when this flush adopted a whole match state (pairs + clusters +
  /// corpus maps) another session already published for the same (base
  /// version, delta) through the shared catalog entry's match store,
  /// skipping candidate generation and evaluation entirely.
  bool match_reused = false;
  /// The generation number this flush published (unchanged by an empty
  /// flush). Every query answers from exactly one generation; a reader
  /// that remembers this number can tell whether a view already includes
  /// this flush.
  uint64_t generation = 0;
  /// Staged operations that collapsed onto an already-staged (side, id)
  /// before this flush applied them — the per-key coalescing a bursty
  /// producer gets for free from the staging map (and, through a
  /// stream::IngestDriver, from ops queued while the previous flush ran).
  size_t coalesced_deltas = 0;
  /// Driver-side staging-queue backlog sampled right after this flush
  /// completed (stream::IngestDriver fills it; always 0 for synchronous
  /// Flush calls). A persistently nonzero depth means producers outpace
  /// the flusher.
  size_t queue_depth = 0;
  size_t corpus_left = 0;      ///< live left records after the flush
  size_t corpus_right = 0;
  size_t total_matches = 0;    ///< standing match pairs after the flush
  size_t strips = 0;  ///< batch-eval units this flush ran (0 = scalar path)
  size_t simd_lanes_evaluated = 0;  ///< atom-lanes that took a SIMD kernel
  size_t arena_bytes = 0;  ///< batch-arena bytes used by this flush
  double index_seconds = 0;    ///< corpus bookkeeping + index merge
  double match_seconds = 0;    ///< candidate scans + rule evaluation
  double cluster_seconds = 0;  ///< match revalidation + union-find upkeep
  // Finer-grained phases (each nested inside one aggregate above):
  double merge_seconds = 0;   ///< index delta merge alone (in index_seconds)
  double scan_seconds = 0;    ///< candidate scans alone (in match_seconds)
  double eval_seconds = 0;    ///< rule evaluation alone (in match_seconds;
                              ///< sharded flushes fuse scan+eval here)
  double rerank_seconds = 0;  ///< windowing drift re-rank (in
                              ///< cluster_seconds)
  double publish_seconds = 0;  ///< building + swapping in the new
                               ///< SessionGeneration (in cluster_seconds)
  /// Bytes of queryable state the publish step copied (as opposed to
  /// shared structurally with the previous generation) — the O(corpus)
  /// slice an O(delta) publish eliminates.
  size_t publish_bytes_copied = 0;
};

/// One corpus record as the session stores it: the tuple plus everything
/// derived from it (sort/block keys, evaluator profile, cache
/// fingerprint). Shared immutably between the session's build side and
/// every published generation — an upsert replaces the pointer, never the
/// record.
struct SessionRecord {
  Tuple tuple;
  uint32_t seq = 0;  ///< per-side ingestion sequence, stable for life
  /// Rendered keys: one per windowing pass, or the single block key.
  std::vector<std::string> keys;
  /// Derived per-record values for the compiled evaluator (empty when
  /// the plan's atoms need none).
  match::RecordProfile profile;
  /// Value fingerprint for pair-decision cache keys (0 when the cache
  /// is off).
  uint64_t fingerprint = 0;
};
using SessionRecordPtr = std::shared_ptr<const SessionRecord>;

/// Per-(side, TupleId) entry of a published id trie: the record's seq and
/// its cluster handle, together so ClusterOf() is a single trie lookup.
struct IdEntry {
  uint32_t seq = 0;
  /// Cluster representative: the minimum (side << 32 | seq) over the
  /// cluster's members — a pure function of the match graph, so every
  /// session publishing the same corpus content publishes the same
  /// handles (what lets catalog sessions share states bit-for-bit).
  uint64_t handle = 0;
};

/// \brief One immutable published match state: corpus, id maps, indexes,
/// matches and clusters, all from the same flush — *the* unit the shared
/// catalog match store memoizes, versioned like candidate::IndexSnapshot.
///
/// Everything here is persistent: the tries share all but O(delta·log n)
/// nodes with the parent state, records are shared by pointer, indexes by
/// persistent-treap nodes, matches by pair-trie nodes. Building the next
/// state from a flushed delta is therefore O(delta·log n), independent of
/// corpus size — and N sessions adopting one state through a catalog
/// entry pay O(1) match-state memory per replica instead of O(corpus).
struct SharedMatchState {
  /// Version in the state chain (0 = the empty initial state; catalog
  /// sessions draw versions from the shared entry counter, private
  /// sessions count locally).
  uint64_t version = 0;
  /// The version this state was built from — stream::GenerationDiff's
  /// O(changes) fast path applies iff to.parent == from.version.
  uint64_t parent_version = 0;
  /// seq -> record, per side (live records only; enumeration order ==
  /// seq order == ingestion order).
  util::FrozenTrie<SessionRecordPtr> corpus[2];
  /// TupleId -> (seq, cluster handle), per side.
  util::FrozenTrie<IdEntry> ids[2];
  /// The candidate indexes this state's matches were computed with.
  candidate::IndexSnapshotPtr indexes;
  /// Standing raw match pairs as (left seq, right seq).
  match::FrozenPairSet matches;
  /// Next per-side ingestion sequence (what an adopting session resumes
  /// allocating from).
  uint32_t next_seq[2] = {0, 0};

  // --- delta vs. the parent state ---

  /// Match pairs present here but not in the parent, as (left seq,
  /// right seq), in first-event order. Net of same-flush churn: a pair
  /// retired and re-established within one flush (an in-place update
  /// whose records still match) appears in neither list.
  std::vector<std::pair<uint32_t, uint32_t>> added_pairs;
  /// Match pairs present in the parent but not here. Seqs may name
  /// records this state no longer holds — translate them through the
  /// *parent* state's corpus.
  std::vector<std::pair<uint32_t, uint32_t>> retired_pairs;

  // --- what the building flush did (so a session that *adopts* this
  // state can report the work it inherited) ---
  size_t upserted = 0;
  size_t removed = 0;
  size_t matches_added = 0;
  size_t matches_dropped = 0;
};
using SharedMatchStatePtr = std::shared_ptr<const SharedMatchState>;

/// \brief One immutable published version of a MatchSession's queryable
/// state: a session-local generation number wrapping a SharedMatchState.
///
/// Flush builds the next state off to the side and publishes it with a
/// single pointer swap under the session's publication latch; queries
/// acquire the pointer once and answer entirely from the acquired object,
/// so a query can never observe a torn mix of versions (matches from one
/// flush against a corpus from another). Generation numbers are per
/// session (every flush that publishes increments them, whether it built
/// the state or adopted it from the catalog); state versions travel with
/// the state and are shared across adopting sessions.
struct SessionGeneration {
  /// Monotonic per-session publication counter (0 = the empty initial
  /// generation).
  uint64_t generation = 0;
  /// The generation this one was published after (generation - 1 in an
  /// unbroken chain).
  uint64_t parent_generation = 0;
  /// The queryable state (never null).
  SharedMatchStatePtr state;
};
using SessionGenerationPtr = std::shared_ptr<const SessionGeneration>;

/// \brief A read-only view of one MatchSession generation.
///
/// Obtained lock-free from MatchSession::View(); every accessor answers
/// from the same pinned generation, so Corpus(), Matches() and Clusters()
/// read from a view are mutually consistent by construction — exactly
/// what one-shot Executor::Run over Corpus() would produce — no matter
/// how many flushes race past in the meantime. Hold a view to make a
/// multi-call read atomic; drop it to release the pinned generation.
class SessionView {
 public:
  uint64_t generation() const { return gen_->generation; }
  size_t left_size() const { return gen_->state->corpus[0].size(); }
  size_t right_size() const { return gen_->state->corpus[1].size(); }

  /// The view's index snapshot (immutable).
  const candidate::IndexSnapshotPtr& indexes() const {
    return gen_->state->indexes;
  }

  /// The pinned generation object itself (immutable, refcounted) — the
  /// raw material stream::GenerationDiff consumes. Holding the returned
  /// pointer keeps the generation alive like holding the view does.
  const SessionGenerationPtr& state() const { return gen_; }

  /// Materializes the view's corpus as an Instance (live records in
  /// ingestion order).
  Instance Corpus() const;

  /// The view's match pairs as (left position, right position) into
  /// Corpus(). Closure plans report the transitively implied pairs.
  match::MatchResult Matches() const;

  /// The entity clusters of the view's matches, numbered exactly as
  /// match::ClusterMatches over (Matches(), Corpus()).
  match::Clustering Clusters() const;

  /// Opaque cluster handle of a record: two records are in one cluster
  /// iff their handles are equal. Valid within this view's generation.
  /// NotFound for unknown ids.
  Result<uint64_t> ClusterOf(int side, TupleId id) const;

  /// True iff both records are in the same cluster of this view.
  Result<bool> SameCluster(int side_a, TupleId id_a, int side_b,
                           TupleId id_b) const;

 private:
  friend class MatchSession;
  SessionView(PlanPtr plan, SessionGenerationPtr gen)
      : plan_(std::move(plan)), gen_(std::move(gen)) {}

  PlanPtr plan_;
  SessionGenerationPtr gen_;
};

/// \brief A standing, incrementally matched corpus behind one compiled
/// MatchPlan.
///
/// Where the Executor treats every batch as a stateless one-shot, a
/// MatchSession keeps the corpus resident: per-RCK blocking / sort-key
/// indexes persist across ingests as immutable candidate::IndexSnapshot
/// versions (persistent treaps for windowing and blocking alike), so a
/// Flush advances the index chain in O(delta · log n) and matches only
/// the staged delta against the indexed corpus (plus intra-delta pairs)
/// instead of re-blocking the world. Match state is maintained
/// incrementally — standing pairs live in a persistent pair set, cluster
/// handles merge per new match — and Matches() / ClusterOf() are
/// queryable between ingests. Publishing is O(delta) too: the queryable
/// state (SharedMatchState) is persistent tries frozen in O(1), and
/// catalog sessions share whole published states through the entry's
/// match store (IngestReport::match_reused), not just index snapshots.
///
/// The contract that makes the incrementality trustworthy: after any
/// sequence of Upsert / Remove / Flush calls, Matches() and Clusters()
/// are exactly what one-shot Executor::Run produces over Corpus() — bit
/// for bit, for every thread and shard count, with or without a shared
/// index catalog. For windowing plans this includes the non-local effects
/// of the sorted order: a flush re-examines pairs pushed together by
/// removals (they may newly match) and retires standing matches pushed
/// apart by insertions (they are no longer sorted-neighborhood
/// candidates) — the latter re-rank resolves every standing pair's
/// per-pass ranks either by direct index queries or, past a size
/// threshold, from one ordered walk per pass with comparison-free O(1)
/// distance checks (see Flush).
///
/// Records are addressed by (side, TupleId): side 0 is the plan's left
/// relation, side 1 the right. Upserting an existing id replaces its
/// values; the record keeps its position in the corpus order.
///
/// Oversized deltas (an initial bulk load, a backfill) shard internally
/// across the executor thread pool — see SessionOptions::shard_min_delta.
///
/// Concurrency model: *generation publishing*. Writers (Upsert / Remove /
/// Flush) serialize on one internal mutex and mutate only build-side
/// state; the queryable state lives in an immutable, reference-counted
/// SessionGeneration that Flush swaps in once the next version is fully
/// built. Queries — Corpus(), Matches(), Clusters(), ClusterOf(),
/// SameCluster(), the size accessors and View() — never touch the writer
/// mutex: they acquire the current generation through a publication latch
/// held only for the pointer copy itself, so read throughput is
/// independent of flush activity (a reader waits on a concurrent flush
/// for at most one pointer swap, never for the flush's work). Each query
/// call answers from one generation; use View() to pin a generation
/// across several calls.
///
/// Note on positions: Matches() / Clusters() address records by position
/// into the same call's (generation's) Corpus(). A flush that removes
/// records renumbers positions of later records — correlate results
/// across flushes by TupleId (via Corpus()) or through a pinned View(),
/// never by raw position.
class MatchSession {
 public:
  explicit MatchSession(PlanPtr plan, SessionOptions options = {});

  const MatchPlan& plan() const { return *plan_; }
  const SessionOptions& options() const { return options_; }

  /// Stages a record for insertion or update. The tuple's id() is its
  /// identity within `side`; its arity must match that side's schema.
  Status Upsert(int side, Tuple tuple) EXCLUDES(mu_);

  /// Stages many records for one side.
  Status Upsert(int side, std::vector<Tuple> tuples) EXCLUDES(mu_);

  /// Stages the removal of a record. NotFound when the id is neither in
  /// the corpus nor staged.
  Status Remove(int side, TupleId id) EXCLUDES(mu_);

  /// Applies the staged delta: merges it into the persistent indexes
  /// (advancing the snapshot chain), matches delta-vs-corpus and
  /// intra-delta pairs, retires match state of removed/updated records,
  /// updates the clustering, and publishes the result as the next
  /// generation. A flush with nothing staged is a cheap no-op that
  /// publishes nothing.
  Result<IngestReport> Flush() EXCLUDES(mu_);

  // Flush-independent queries: each call acquires the current generation
  // once and answers from it (one View() call); none of them ever touches
  // the writer mutex — the EXCLUDES(mu_) annotations make that PR 5
  // guarantee a compile-time property under Clang TSA: a code path that
  // routed a query through mu_ (or called one with mu_ held) would no
  // longer build. Two consecutive calls may span a concurrent flush —
  // pin a View() when several reads must agree.

  /// A consistent read view of the current generation — one pointer
  /// acquire through the publication latch (held for a pointer copy,
  /// never for flush work). All accessors of the returned view answer
  /// from the same generation even while flushes continue.
  SessionView View() const EXCLUDES(mu_) {
    return SessionView(plan_, CurrentGeneration());
  }

  /// The published generation number (0 until the first non-empty flush).
  uint64_t generation() const EXCLUDES(mu_) {
    return CurrentGeneration()->generation;
  }

  size_t left_size() const EXCLUDES(mu_) { return View().left_size(); }
  size_t right_size() const EXCLUDES(mu_) { return View().right_size(); }

  /// Records staged but not yet flushed. (A staging query, not a
  /// generation query: it reads build-side state under the writer mutex.)
  size_t pending_ops() const EXCLUDES(mu_);

  /// The current (last flushed) index snapshot — immutable; stays valid
  /// and unchanged while the session keeps flushing.
  candidate::IndexSnapshotPtr indexes() const EXCLUDES(mu_) {
    return View().indexes();
  }

  /// Materializes the standing corpus as an Instance (live records in
  /// ingestion order) — the "equivalent single batch" a one-shot
  /// Executor::Run reproduces this session's results on.
  Instance Corpus() const EXCLUDES(mu_) { return View().Corpus(); }

  /// The standing match pairs, as (left position, right position) into
  /// Corpus() *of the same generation* (see the class comment on
  /// positions across flushes). Closure plans report the transitively
  /// implied pairs, like Executor::Run does.
  match::MatchResult Matches() const EXCLUDES(mu_) {
    return View().Matches();
  }

  /// The entity clusters of the standing matches, numbered exactly as
  /// match::ClusterMatches over (Matches(), Corpus()).
  match::Clustering Clusters() const EXCLUDES(mu_) {
    return View().Clusters();
  }

  /// Opaque cluster handle of a record: two records are in one cluster
  /// iff their handles are equal. Handles are stable between flushes
  /// (any Flush may renumber). NotFound for unknown ids.
  Result<uint64_t> ClusterOf(int side, TupleId id) const EXCLUDES(mu_) {
    return View().ClusterOf(side, id);
  }

  /// True iff both records are currently in the same cluster (answered
  /// from one generation).
  Result<bool> SameCluster(int side_a, TupleId id_a, int side_b,
                           TupleId id_b) const EXCLUDES(mu_) {
    return View().SameCluster(side_a, id_a, side_b, id_b);
  }

 private:
  using Record = SessionRecord;

  static uint64_t Handle(int side, uint32_t seq) {
    return (static_cast<uint64_t>(side) << 32) | seq;
  }

  Status CheckSide(int side) const;
  std::vector<std::string> RenderKeys(const Tuple& tuple, int side) const;
  /// Fills the record's evaluator profile and cache fingerprint (those the
  /// current configuration needs) from its tuple.
  void RenderDerived(Record* record, int side) const;
  void RebuildPositionsLocked(int side) REQUIRES(mu_);
  /// Recomputes every cluster handle (and the member lists) from the
  /// standing match graph with a scratch union-find — the O(corpus) slow
  /// path a flush with retirements takes; match-only flushes maintain
  /// handles incrementally through MergeHandlesLocked.
  void RebuildClustersLocked() REQUIRES(mu_);
  /// Localized split repair after window-drift retirements: recomputes
  /// connectivity only for the clusters that lost an edge (`dropped`
  /// holds the retired pairs), leaving every other handle untouched.
  /// Exact — a dropped edge cannot split a cluster that did not hold it.
  void RepairClustersLocked(
      const std::vector<std::pair<uint32_t, uint32_t>>& dropped)
      REQUIRES(mu_);
  /// Incremental handle maintenance for one new match (l, r): unions the
  /// two clusters under the smaller handle, rewriting only the losing
  /// cluster's members.
  void MergeHandlesLocked(uint32_t l, uint32_t r) REQUIRES(mu_);
  /// Freezes the build-side state into the next SharedMatchState under
  /// `version` and swaps in the generation wrapping it (the single
  /// publication point). O(delta): every container is persistent or
  /// moved. `alloc_base` is the persistent structures' alloc_bytes sum
  /// sampled at flush start (their growth is publish_bytes_copied).
  /// Returns the published state (for the catalog match store).
  SharedMatchStatePtr PublishLocked(uint64_t version, size_t alloc_base,
                                    IngestReport* report) REQUIRES(mu_);
  /// Adopts a state a sibling catalog session already published for this
  /// exact transition: publishes it as this session's next generation and
  /// drops the build-side containers (build_stale_) — per-replica match
  /// memory stays O(1) while sessions keep adopting.
  void AdoptLocked(SharedMatchStatePtr state, IngestReport* report)
      REQUIRES(mu_);
  /// Reconstructs the build-side containers from the last published
  /// state — the O(corpus) cost a previously-adopting session pays once
  /// when it has to build a transition itself (divergence, or winning the
  /// builder race).
  void MaterializeLocked() REQUIRES(mu_);
  /// The persistent structures' monotonic allocation counters, summed
  /// (see PublishLocked's alloc_base).
  size_t PersistentAllocBytesLocked() const REQUIRES(mu_);
  /// The current generation, acquired through the publication latch.
  SessionGenerationPtr CurrentGeneration() const EXCLUDES(publish_mu_) {
    util::MutexLock lock(publish_mu_);
    return published_;
  }

  /// Evaluates a deduped candidate list, parallel-chunked like the
  /// Executor's match stage; appends passing pairs to `out` in
  /// deterministic order. `eval` runs on worker threads: it must capture
  /// any mu_-guarded state through local aliases taken by the caller
  /// (which holds mu_ and keeps that state frozen for the whole call).
  void EvaluatePairs(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      const std::function<bool(uint32_t, uint32_t)>& eval,
      std::vector<std::pair<uint32_t, uint32_t>>* out, IngestReport* report);

  /// Batched form of EvaluatePairs for the delta paths: regroups the
  /// candidates into strips (candidate::BuildStrips), probes the pair
  /// cache per lane up front, and runs CompiledEvaluator::MatchesBatch
  /// over columns built in batch_arena_. Appends passing pairs to `out`
  /// in the same deterministic (input) order as EvaluatePairs. Requires
  /// plan_->evaluator().SupportsBatch().
  void EvaluatePairsBatch(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      std::atomic<size_t>* cache_hits,
      std::vector<std::pair<uint32_t, uint32_t>>* out, IngestReport* report)
      REQUIRES(mu_);

  /// Sharded flush paths (oversized deltas); both return the shard count
  /// used. They hold mu_ for their whole run; their ParallelChunks
  /// workers read only snapshot state and lock-scope aliases (see
  /// EvaluatePairs).
  size_t ShardedWindowFlush(
      const std::vector<std::pair<int, uint32_t>>& inserted,
      const std::function<bool(uint32_t, uint32_t)>& eval,
      const std::function<std::pair<uint32_t, uint32_t>(
          const candidate::IndexedEntry&, const candidate::IndexedEntry&)>&
          seq_pair,
      size_t window, std::vector<std::pair<uint32_t, uint32_t>>* out,
      IngestReport* report) REQUIRES(mu_);
  size_t ShardedBlockFlush(
      const std::vector<std::pair<int, uint32_t>>& inserted,
      const std::function<bool(uint32_t, uint32_t)>& eval,
      std::vector<std::pair<uint32_t, uint32_t>>* out, IngestReport* report)
      REQUIRES(mu_);

  PlanPtr plan_;
  SessionOptions options_;

  /// The published side: the current generation, swapped by PublishLocked
  /// and acquired by every query. The latch guards nothing but the
  /// pointer copy (a few atomic ops): writers hold it for one swap per
  /// flush, readers for one shared_ptr copy per query — queries therefore
  /// never wait on flush work, only on other sub-microsecond pointer
  /// copies. (The natural primitive here is std::atomic<shared_ptr>, but
  /// libstdc++'s implementation is itself a per-object spinlock around
  /// exactly this pointer+refcount pair — with a formally relaxed reader
  /// unlock that ThreadSanitizer rightly flags — so an explicit latch
  /// costs the same and is memory-model clean. A truly contention-free
  /// many-core acquire needs epoch/hazard machinery; see ROADMAP.)
  /// `published_` is never null.
  mutable util::Mutex publish_mu_ ACQUIRED_AFTER(mu_);
  SessionGenerationPtr published_ GUARDED_BY(publish_mu_);

  /// ---- build side: guarded by mu_, never read by queries ----
  mutable util::Mutex mu_;
  std::vector<SessionRecordPtr> corpus_[2]
      GUARDED_BY(mu_);  // ingestion order
  /// seq -> corpus position, dense (seqs are allocated consecutively;
  /// slots of removed records go stale and are never consulted). A flat
  /// array because this lookup sits on the hottest flush paths — every
  /// pair evaluation resolves both records through it.
  std::vector<uint32_t> pos_by_seq_[2] GUARDED_BY(mu_);
  uint32_t next_seq_[2] GUARDED_BY(mu_) = {0, 0};

  /// The persistent mirrors of the queryable state — what PublishLocked
  /// freezes in O(1). corpus_trie_: seq -> record; ids_: id -> (seq,
  /// handle). ids_ doubles as the build side's id lookup (there is no
  /// separate pos_by_id map): position = pos_by_seq_[ids_.Get(id)->seq].
  util::PersistentTrie<SessionRecordPtr> corpus_trie_[2] GUARDED_BY(mu_);
  util::PersistentTrie<IdEntry> ids_[2] GUARDED_BY(mu_);

  /// Staged delta, keyed (side, id); nullopt = removal. Ordered so flush
  /// processing (and hence seq assignment) is deterministic.
  std::map<std::pair<int, TupleId>, std::optional<Tuple>> pending_
      GUARDED_BY(mu_);
  /// Staged ops that overwrote an already-staged (side, id) since the
  /// last flush (reported as IngestReport::coalesced_deltas).
  size_t pending_coalesced_ GUARDED_BY(mu_) = 0;

  /// Standing raw match pairs as (left seq, right seq), twice: the hash
  /// PairSet is the O(1) Contains engine the candidate scans probe per
  /// pair; the persistent set carries the same membership as a trie so
  /// publishing is an O(1) freeze (it also journals the net added/retired
  /// delta each flush publishes). Double-maintained on add/retire.
  match::PairSet raw_matches_ GUARDED_BY(mu_);
  match::PersistentPairSet pairs_ GUARDED_BY(mu_);

  /// The current version of the persistent candidate indexes: one sorted
  /// treap per windowing pass, or the block index, frozen per flush.
  /// Readers (queries, shard workers, sibling catalog sessions) hold the
  /// snapshot through their generation; Flush advances to the next
  /// version without disturbing them.
  candidate::IndexSnapshotPtr indexes_ GUARDED_BY(mu_);
  /// Version counter for private (non-catalog) snapshot chains.
  uint64_t next_version_ GUARDED_BY(mu_) = 1;
  /// Publication counter behind SessionGeneration::generation.
  uint64_t next_generation_ GUARDED_BY(mu_) = 1;
  /// The version of the last published SharedMatchState — the base of the
  /// next transition (keys the catalog match-store memo).
  uint64_t state_version_ GUARDED_BY(mu_) = 0;
  /// State-version counter for private (non-catalog) chains; catalog
  /// sessions draw versions from the shared entry instead.
  uint64_t next_state_version_ GUARDED_BY(mu_) = 1;
  /// The shared catalog entry, when SessionOptions::catalog is set.
  /// Assigned by the constructor, immutable afterwards (the Entry locks
  /// itself internally), so it needs no guard.
  candidate::IndexCatalog::EntryPtr catalog_entry_;

  /// Cluster handles, incrementally maintained: handle_by_seq_ is the
  /// dense build-side mirror of the handles published in ids_ (stale
  /// slots after removal, like pos_by_seq_); cluster_members_ lists the
  /// members of every multi-record cluster, keyed by its handle
  /// (singletons are implicit — a record's own packed (side, seq) is its
  /// handle until it matches). Retirements make handles stale as a whole
  /// (clusters_stale_) and the next publish rebuilds them from the
  /// surviving pairs; match-only flushes merge incrementally.
  struct ClusterMember {
    uint64_t packed;  ///< (side << 32) | seq
    TupleId id;
  };
  std::vector<uint64_t> handle_by_seq_[2] GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::vector<ClusterMember>> cluster_members_
      GUARDED_BY(mu_);
  bool clusters_stale_ GUARDED_BY(mu_) = false;

  /// True after AdoptLocked dropped the build-side containers: the next
  /// flush this session has to build itself first re-materializes them
  /// from the published state (MaterializeLocked).
  bool build_stale_ GUARDED_BY(mu_) = false;

  /// Removal-gap positions per windowing pass, valid during one Flush
  /// (filled after the index merge, read by the scan paths).
  std::vector<std::vector<size_t>> gaps_scratch_ GUARDED_BY(mu_);

  /// Bulk-rerank rank table, reused across flushes so the ~1 MB
  /// allocation is paid once (every slot a flush reads is rewritten by
  /// its own full-index walks first).
  std::vector<uint32_t> rank_scratch_[2] GUARDED_BY(mu_);

  /// Optional pair-decision cache (SessionOptions::pair_cache_capacity).
  /// The pointer is set by the constructor and immutable afterwards; the
  /// cache itself is internally sharded-locked (match/pair_cache.h).
  std::unique_ptr<match::PairDecisionCache> pair_cache_;

  /// Reusable arena for the batch-evaluation transients of one flush
  /// (columns, strips, lane masks). Reset at the start of every
  /// EvaluatePairsBatch; steady-state flushes allocate from already
  /// committed pages.
  util::Arena batch_arena_ GUARDED_BY(mu_);
};

}  // namespace mdmatch::api

#endif  // MDMATCH_API_SESSION_H_
