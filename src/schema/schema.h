#ifndef MDMATCH_SCHEMA_SCHEMA_H_
#define MDMATCH_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mdmatch {

/// Index of an attribute within its relation schema.
using AttrId = int32_t;

/// \brief One attribute of a relation schema.
///
/// `domain` is a semantic-domain label ("name", "phone", "zip", ...): two
/// attributes are comparable in an MD only when their domains coincide
/// (paper Section 2.1, "comparable lists"). The paper assumes data
/// standardization has aligned representations; all values are strings.
struct AttributeDef {
  std::string name;
  std::string domain = "string";
};

/// \brief A relation schema: an ordered list of named attributes.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<AttributeDef> attributes);

  const std::string& name() const { return name_; }
  int32_t arity() const { return static_cast<int32_t>(attributes_.size()); }
  const AttributeDef& attribute(AttrId id) const {
    return attributes_[static_cast<size_t>(id)];
  }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Looks up an attribute by name; NotFound if absent.
  Result<AttrId> Find(std::string_view attr_name) const;

  /// True if `id` indexes an attribute of this schema.
  bool IsValid(AttrId id) const { return id >= 0 && id < arity(); }

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// \brief The pair of (possibly different, possibly identical) schemas
/// (R1, R2) that MDs are defined over.
///
/// For single-relation deduplication both sides are the same schema; the
/// machinery is unchanged (paper Example 2.3 uses (R, R)).
class SchemaPair {
 public:
  SchemaPair() = default;
  SchemaPair(Schema left, Schema right)
      : left_(std::move(left)), right_(std::move(right)) {}

  const Schema& left() const { return left_; }
  const Schema& right() const { return right_; }
  const Schema& side(int s) const { return s == 0 ? left_ : right_; }

  /// Total number of qualified attributes R1[A] / R2[B]; this is the `h`
  /// of Theorem 4.1.
  int32_t total_attrs() const { return left_.arity() + right_.arity(); }

 private:
  Schema left_;
  Schema right_;
};

/// \brief A qualified attribute: R1[A] (rel == 0) or R2[B] (rel == 1).
struct QualifiedAttr {
  int32_t rel = 0;
  AttrId attr = 0;

  bool operator==(const QualifiedAttr&) const = default;
  bool operator<(const QualifiedAttr& o) const {
    return rel != o.rel ? rel < o.rel : attr < o.attr;
  }

  /// Dense index in [0, pair.total_attrs()).
  int32_t Index(const SchemaPair& pair) const {
    return rel == 0 ? attr : pair.left().arity() + attr;
  }

  /// Renders "R[name]" for diagnostics.
  std::string ToString(const SchemaPair& pair) const;
};

/// \brief A comparable pair of attributes (R1[A], R2[B]) — one element of
/// a comparable-list pair or of an MD's RHS.
struct AttrPair {
  AttrId left = 0;
  AttrId right = 0;

  bool operator==(const AttrPair&) const = default;
  bool operator<(const AttrPair& o) const {
    return left != o.left ? left < o.left : right < o.right;
  }
};

/// \brief Comparable lists (Y1, Y2) over (R1, R2): same length and
/// pairwise-compatible domains (paper Section 2.1).
class ComparableLists {
 public:
  ComparableLists() = default;

  /// Builds from parallel attribute-id lists; validates lengths, attribute
  /// validity and pairwise domain equality.
  static Result<ComparableLists> Make(const SchemaPair& pair,
                                      std::vector<AttrId> left,
                                      std::vector<AttrId> right);

  /// Builds from attribute names (convenience for tests/examples).
  static Result<ComparableLists> MakeByName(
      const SchemaPair& pair, const std::vector<std::string>& left,
      const std::vector<std::string>& right);

  size_t size() const { return left_.size(); }
  AttrPair pair_at(size_t i) const { return {left_[i], right_[i]}; }
  const std::vector<AttrId>& left() const { return left_; }
  const std::vector<AttrId>& right() const { return right_; }

  /// True if (a, b) occurs at some position.
  bool Contains(AttrPair p) const;

 private:
  std::vector<AttrId> left_;
  std::vector<AttrId> right_;
};

}  // namespace mdmatch

#endif  // MDMATCH_SCHEMA_SCHEMA_H_
