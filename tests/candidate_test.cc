// Tests for the candidate-generation subsystem (src/candidate/): the
// order-statistic persistent SortedKeyIndex against a flat-vector
// reference model, snapshot semantics (copies frozen while the original
// advances), the radix permutation sort against stable_sort, the
// single-sort windowing front-end, and IndexSnapshot / IndexCatalog
// version sharing.

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "candidate/block_index.h"
#include "candidate/catalog.h"
#include "candidate/indexed_entry.h"
#include "candidate/snapshot.h"
#include "candidate/sorted_index.h"
#include "candidate/windowing.h"
#include "datagen/credit_billing.h"
#include "match/hs_rules.h"

namespace mdmatch::candidate {
namespace {

// ------------------------------------------------------- SortedKeyIndex

std::vector<IndexedEntry> SortedReference(std::vector<IndexedEntry> entries) {
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(SortedKeyIndexTest, InsertRemoveRankAndSelect) {
  SortedKeyIndex index;
  EXPECT_TRUE(index.empty());
  index.Insert({"b", 0, 1});
  index.Insert({"a", 1, 2});
  index.Insert({"c", 0, 3});
  index.Insert({"a", 0, 4});
  ASSERT_EQ(index.size(), 4u);

  // Order: ("a",0,4) ("a",1,2) ("b",0,1) ("c",0,3).
  EXPECT_EQ(index.at(0), (IndexedEntry{"a", 0, 4}));
  EXPECT_EQ(index.at(1), (IndexedEntry{"a", 1, 2}));
  EXPECT_EQ(index.at(2), (IndexedEntry{"b", 0, 1}));
  EXPECT_EQ(index.at(3), (IndexedEntry{"c", 0, 3}));

  EXPECT_EQ(index.LowerBound({"a", 0, 4}), 0u);
  EXPECT_EQ(index.LowerBound({"b", 0, 1}), 2u);
  EXPECT_EQ(index.LowerBound({"bb", 0, 0}), 3u);  // absent: gap position

  EXPECT_TRUE(index.Remove({"b", 0, 1}));
  EXPECT_FALSE(index.Remove({"b", 0, 1}));  // already gone
  EXPECT_FALSE(index.Remove({"zz", 1, 9}));  // never present
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.at(2), (IndexedEntry{"c", 0, 3}));
}

TEST(SortedKeyIndexTest, SpanWalksRankRanges) {
  SortedKeyIndex index;
  for (uint32_t i = 0; i < 100; ++i) {
    index.Insert({std::to_string(i % 10) + "-" + std::to_string(i), 0, i});
  }
  const auto all = index.Span(0, index.size());
  ASSERT_EQ(all.size(), 100u);
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_TRUE(*all[i] < *all[i + 1]);
  }
  // Any sub-span equals the same slice of the full walk.
  const auto mid = index.Span(37, 61);
  ASSERT_EQ(mid.size(), 24u);
  for (size_t i = 0; i < mid.size(); ++i) {
    EXPECT_EQ(*mid[i], *all[37 + i]);
    EXPECT_EQ(*mid[i], index.at(37 + i));
  }
  EXPECT_TRUE(index.Span(95, 200).size() == 5u);  // hi clamps to size
  EXPECT_TRUE(index.Span(60, 60).empty());
  EXPECT_TRUE(index.Span(200, 300).empty());
}

TEST(SortedKeyIndexTest, RandomOpsMatchFlatReference) {
  std::mt19937 rng(4711);
  SortedKeyIndex index;
  std::vector<IndexedEntry> reference;  // kept sorted
  uint32_t next_seq = 0;

  for (int round = 0; round < 60; ++round) {
    // A batch of inserts and removes, like one session flush.
    std::vector<IndexedEntry> removes;
    std::vector<IndexedEntry> inserts;
    const size_t num_inserts = rng() % 40;
    for (size_t i = 0; i < num_inserts; ++i) {
      inserts.push_back({std::string(1, 'a' + rng() % 6) +
                             std::string(1, 'a' + rng() % 6),
                         static_cast<uint8_t>(rng() % 2), next_seq++});
    }
    const size_t num_removes = reference.empty() ? 0 : rng() % 10;
    for (size_t i = 0; i < num_removes; ++i) {
      removes.push_back(reference[rng() % reference.size()]);
    }
    index.Apply(removes, inserts);
    for (const auto& e : removes) {
      auto it = std::find(reference.begin(), reference.end(), e);
      if (it != reference.end()) reference.erase(it);
    }
    reference.insert(reference.end(), inserts.begin(), inserts.end());
    reference = SortedReference(std::move(reference));

    ASSERT_EQ(index.size(), reference.size());
    EXPECT_EQ(index.Entries(), reference);
    // Rank queries agree with the flat lower_bound on present entries,
    // gaps and extremes.
    for (int probe = 0; probe < 20 && !reference.empty(); ++probe) {
      IndexedEntry e = reference[rng() % reference.size()];
      if (probe % 3 == 1) e.key += "x";   // likely absent
      if (probe % 3 == 2) e.seq = rng();  // likely absent
      const size_t expected = static_cast<size_t>(
          std::lower_bound(reference.begin(), reference.end(), e) -
          reference.begin());
      EXPECT_EQ(index.LowerBound(e), expected);
    }
  }
}

TEST(SortedKeyIndexTest, CopiesAreFrozenSnapshots) {
  SortedKeyIndex index;
  for (uint32_t i = 0; i < 50; ++i) {
    index.Insert({std::to_string(i), 0, i});
  }
  const SortedKeyIndex snapshot = index;  // O(1): shares structure
  const std::vector<IndexedEntry> frozen = snapshot.Entries();

  // Keep pointers into the snapshot: they must survive any amount of
  // divergence of the original.
  const auto frozen_span = snapshot.Span(0, snapshot.size());

  for (uint32_t i = 0; i < 50; i += 2) {
    index.Remove({std::to_string(i), 0, i});
  }
  for (uint32_t i = 100; i < 140; ++i) {
    index.Insert({std::to_string(i), 1, i});
  }

  EXPECT_EQ(snapshot.size(), 50u);
  EXPECT_EQ(snapshot.Entries(), frozen);
  for (size_t i = 0; i < frozen_span.size(); ++i) {
    EXPECT_EQ(*frozen_span[i], frozen[i]);
  }
  EXPECT_EQ(index.size(), 50u - 25u + 40u);
}

// ------------------------------------------------- SortedKeyPermutation

TEST(SortedKeyPermutationTest, MatchesStableSortIncludingTies) {
  std::mt19937 rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<std::string> keys;
    const size_t n = 1 + rng() % 200;
    for (size_t i = 0; i < n; ++i) {
      std::string key;
      const size_t len = rng() % 12;  // empties and prefixes included
      for (size_t c = 0; c < len; ++c) {
        key += static_cast<char>('A' + rng() % 4);  // few symbols: many ties
      }
      keys.push_back(std::move(key));
    }
    std::vector<uint32_t> expected(n);
    for (uint32_t i = 0; i < n; ++i) expected[i] = i;
    std::stable_sort(expected.begin(), expected.end(),
                     [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
    EXPECT_EQ(SortedKeyPermutation(keys), expected) << "round " << round;
  }
}

TEST(SortedKeyPermutationTest, OrdersByUnsignedByte) {
  // High-bit bytes must sort after ASCII (memcmp order), and a prefix
  // before its extensions.
  std::vector<std::string> keys = {"\xffz", "az", "a", "", "\x7f"};
  const auto perm = SortedKeyPermutation(keys);
  const std::vector<uint32_t> expected = {3, 2, 1, 4, 0};
  EXPECT_EQ(perm, expected);
}

// ------------------------------------------------------------ windowing

TEST(WindowingFrontEndTest, MatchesLegacySemanticsOnGeneratedData) {
  sim::SimOpRegistry ops;
  datagen::CreditBillingOptions gen;
  gen.num_base = 150;
  gen.seed = 321;
  datagen::CreditBillingData data = datagen::GenerateCreditBilling(gen, &ops);

  const std::vector<match::KeyFunction> keys =
      match::StandardWindowKeys(data.pair);
  ASSERT_GE(keys.size(), 2u);

  // Reference: per pass, stable_sort full entry vectors (the pre-refactor
  // implementation), then slide the window.
  auto reference = [&](const match::KeyFunction& key, size_t window) {
    struct Entry {
      std::string key;
      uint32_t index;
      uint8_t side;
    };
    std::vector<Entry> entries;
    const Instance& inst = data.instance;
    for (uint32_t i = 0; i < inst.left().size(); ++i) {
      entries.push_back({key.Render(inst.left().tuple(i), 0), i, 0});
    }
    for (uint32_t i = 0; i < inst.right().size(); ++i) {
      entries.push_back({key.Render(inst.right().tuple(i), 1), i, 1});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.key < b.key;
                     });
    match::CandidateSet out;
    for (size_t i = 0; i < entries.size(); ++i) {
      const size_t hi = std::min(entries.size(), i + window);
      for (size_t j = i + 1; j < hi; ++j) {
        if (entries[i].side == entries[j].side) continue;
        if (entries[i].side == 0) {
          out.Add(entries[i].index, entries[j].index);
        } else {
          out.Add(entries[j].index, entries[i].index);
        }
      }
    }
    return out;
  };

  for (const size_t window : {2u, 5u, 10u}) {
    match::CandidateSet expected;
    for (const auto& key : keys) {
      expected.Merge(reference(key, window));
    }
    const match::CandidateSet got =
        WindowCandidatesMultiPass(data.instance, keys, window);
    // Same pairs in the same order — executors evaluate candidates in
    // this order, so ordering is part of the bit-identical contract.
    EXPECT_EQ(got.pairs(), expected.pairs()) << "window " << window;
  }
  EXPECT_EQ(WindowCandidates(data.instance, keys[0], 1).size(), 0u);
  EXPECT_EQ(
      WindowCandidatesMultiPass(data.instance, {}, 10).size(), 0u);
}

// -------------------------------------------------------- IndexSnapshot

TEST(IndexSnapshotTest, AdvanceLeavesSharedBaseUntouched) {
  IndexSnapshotPtr base = IndexSnapshot::Empty(2, /*blocking=*/false);
  EXPECT_EQ(base->version(), 0u);

  std::vector<std::vector<IndexedEntry>> inserts(2);
  for (uint32_t i = 0; i < 20; ++i) {
    inserts[0].push_back({"k" + std::to_string(i), 0, i});
    inserts[1].push_back({"j" + std::to_string(i), 0, i});
  }
  // Holding a second reference forces copy-on-write.
  IndexSnapshotPtr held = base;
  IndexSnapshotPtr next = IndexSnapshot::Advance(
      base, std::vector<std::vector<IndexedEntry>>(2), std::move(inserts),
      {}, {}, /*version=*/1);
  EXPECT_EQ(held->window_passes()[0].size(), 0u);
  EXPECT_EQ(next->window_passes()[0].size(), 20u);
  EXPECT_EQ(next->window_passes()[1].size(), 20u);
  EXPECT_EQ(next->version(), 1u);
}

TEST(IndexSnapshotTest, BlockIndexClonedOnlyWhenShared) {
  IndexSnapshotPtr snapshot = IndexSnapshot::Empty(0, /*blocking=*/true);
  std::vector<IndexedEntry> inserts = {{"blk", 0, 1}, {"blk", 1, 2}};
  snapshot = IndexSnapshot::Advance(std::move(snapshot), {}, {}, {},
                                    inserts, 1);
  const BlockIndex* before = snapshot->block();
  ASSERT_NE(before, nullptr);
  ASSERT_NE(before->Find("blk"), nullptr);

  // Shared: the old version must keep its contents after the advance.
  IndexSnapshotPtr held = snapshot;
  std::vector<IndexedEntry> removes = {{"blk", 0, 1}};
  IndexSnapshotPtr next =
      IndexSnapshot::Advance(snapshot, {}, {}, removes, {}, 2);
  ASSERT_NE(held->block()->Find("blk"), nullptr);
  EXPECT_EQ(held->block()->Find("blk")->left.size(), 1u);
  EXPECT_EQ(next->block()->Find("blk")->left.size(), 0u);

  // Unshared advance recycles the object (same block pointer, no clone).
  held.reset();
  const BlockIndex* recycled_block = next->block();
  std::vector<IndexedEntry> more = {{"blk2", 0, 3}};
  next = IndexSnapshot::Advance(std::move(next), {}, {}, {}, more, 3);
  EXPECT_EQ(next->block(), recycled_block);
  EXPECT_NE(next->block()->Find("blk2"), nullptr);
}

// ------------------------------------------------------------ BlockIndex

/// Flat reference model: the behavior BlockIndex must reproduce.
struct BlockReference {
  std::map<std::string, BlockIndex::Block> blocks;
  void Add(uint8_t side, uint32_t id, const std::string& key) {
    auto& b = blocks[key];
    (side == 0 ? b.left : b.right).push_back(id);
  }
  bool Remove(uint8_t side, uint32_t id, const std::string& key) {
    auto it = blocks.find(key);
    if (it == blocks.end()) return false;
    auto& ids = side == 0 ? it->second.left : it->second.right;
    auto pos = std::find(ids.begin(), ids.end(), id);
    if (pos == ids.end()) return false;
    ids.erase(pos);
    if (it->second.left.empty() && it->second.right.empty()) {
      blocks.erase(it);
    }
    return true;
  }
};

void ExpectSameBlocks(const BlockIndex& index, const BlockReference& ref) {
  ASSERT_EQ(index.num_blocks(), ref.blocks.size());
  auto it = ref.blocks.begin();
  index.ForEachBlock(
      [&](const std::string& key, const BlockIndex::Block& block) {
        ASSERT_NE(it, ref.blocks.end());
        EXPECT_EQ(key, it->first);  // key order
        EXPECT_EQ(block.left, it->second.left);
        EXPECT_EQ(block.right, it->second.right);
        ++it;
      });
  EXPECT_EQ(it, ref.blocks.end());
  for (const auto& [key, block] : ref.blocks) {
    const BlockIndex::Block* found = index.Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(found->left, block.left);
    EXPECT_EQ(found->right, block.right);
  }
}

TEST(BlockIndexTest, RandomOpsMatchReferenceAcrossSnapshots) {
  std::mt19937 rng(4242);
  BlockIndex index;
  BlockReference ref;
  std::vector<std::pair<BlockIndex, BlockReference>> snapshots;
  std::vector<std::tuple<uint8_t, uint32_t, std::string>> live;

  for (int step = 0; step < 3000; ++step) {
    if (!live.empty() && rng() % 3 == 0) {
      const size_t at = rng() % live.size();
      const auto [side, id, key] = live[at];
      EXPECT_TRUE(index.Remove(side, id, key));
      EXPECT_TRUE(ref.Remove(side, id, key));
      live.erase(live.begin() + at);
    } else {
      const uint8_t side = rng() % 2;
      const uint32_t id = step;
      const std::string key = "k" + std::to_string(rng() % 60);
      index.Add(side, id, key);
      ref.Add(side, id, key);
      live.emplace_back(side, id, key);
    }
    EXPECT_FALSE(index.Remove(0, 999999, "absent"));
    if (step % 500 == 250) snapshots.emplace_back(index, ref);  // O(1) copy
  }
  ExpectSameBlocks(index, ref);
  // Every frozen copy still shows exactly the state it was taken at.
  for (const auto& [frozen, frozen_ref] : snapshots) {
    ExpectSameBlocks(frozen, frozen_ref);
  }
}

TEST(BlockIndexTest, MutationClonesOnlyTheTouchedBlock) {
  BlockIndex index;
  for (uint32_t i = 0; i < 50; ++i) {
    index.Add(0, i, "key" + std::to_string(i % 10));
  }
  BlockIndex frozen = index;  // flips to persistent mode
  const BlockIndex::Block* untouched_before = frozen.Find("key3");
  const BlockIndex::Block* touched_before = frozen.Find("key7");

  index.Add(1, 100, "key7");
  // The touched block was cloned for the new version; every other block
  // is shared by pointer with the frozen copy.
  EXPECT_EQ(index.Find("key3"), untouched_before);
  EXPECT_NE(index.Find("key7"), touched_before);
  EXPECT_EQ(frozen.Find("key7"), touched_before);
  EXPECT_EQ(frozen.Find("key7")->right.size(), 0u);
  EXPECT_EQ(index.Find("key7")->right.size(), 1u);
}

// Satellite regression (const-correctness audit): nothing reachable from
// a frozen snapshot hands out a mutable path into the index — Find and
// ForEachBlock return const blocks, IndexSnapshot::block() is a const
// pointer, and mutating the live index never disturbs what a frozen
// snapshot shows.
TEST(BlockIndexTest, FrozenSnapshotsExposeNoMutablePath) {
  static_assert(
      std::is_same_v<decltype(std::declval<const BlockIndex&>().Find("")),
                     const BlockIndex::Block*>,
      "Find must hand out const blocks");
  static_assert(
      std::is_same_v<
          decltype(std::declval<const IndexSnapshot&>().block()),
          const BlockIndex*>,
      "IndexSnapshot::block must be deeply const");

  IndexSnapshotPtr snapshot = IndexSnapshot::Empty(0, /*blocking=*/true);
  std::vector<IndexedEntry> inserts = {{"a", 0, 1}, {"a", 1, 2},
                                       {"b", 0, 3}};
  snapshot = IndexSnapshot::Advance(std::move(snapshot), {}, {}, {},
                                    inserts, 1);
  IndexSnapshotPtr frozen = snapshot;

  // Hammer the same blocks through several descendant versions.
  for (uint64_t v = 2; v < 6; ++v) {
    std::vector<IndexedEntry> more = {{"a", 0, static_cast<uint32_t>(v * 10)},
                                      {"b", 1, static_cast<uint32_t>(v)}};
    std::vector<IndexedEntry> removes =
        v == 4 ? std::vector<IndexedEntry>{{"a", 1, 2}}
               : std::vector<IndexedEntry>{};
    snapshot = IndexSnapshot::Advance(std::move(snapshot), {}, {}, removes,
                                      more, v);
  }

  const BlockIndex::Block* a = frozen->block()->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->left, (std::vector<uint32_t>{1}));
  EXPECT_EQ(a->right, (std::vector<uint32_t>{2}));
  const BlockIndex::Block* b = frozen->block()->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->left, (std::vector<uint32_t>{3}));
  EXPECT_TRUE(b->right.empty());
  EXPECT_EQ(frozen->block()->num_blocks(), 2u);
  // And the live head really did move on.
  EXPECT_EQ(snapshot->block()->Find("a")->left.size(), 5u);
}

// --------------------------------------------------------- IndexCatalog

TEST(IndexCatalogTest, MemoizesTransitionsPerEntry) {
  IndexCatalog catalog;
  auto entry = catalog.Acquire(1234, "corpus-a");
  ASSERT_EQ(catalog.num_entries(), 1u);
  EXPECT_EQ(catalog.Acquire(1234, "corpus-a"), entry);  // same slot
  EXPECT_NE(catalog.Acquire(1234, "corpus-b"), entry);
  EXPECT_NE(catalog.Acquire(99, "corpus-a"), entry);
  EXPECT_EQ(catalog.num_entries(), 3u);

  size_t builds = 0;
  auto build = [&](uint64_t version) {
    ++builds;
    IndexSnapshotPtr base = IndexSnapshot::Empty(1, false);
    std::vector<std::vector<IndexedEntry>> inserts(1);
    inserts[0].push_back({"x", 0, 7});
    return IndexSnapshot::Advance(
        std::move(base), std::vector<std::vector<IndexedEntry>>(1),
        std::move(inserts), {}, {}, version);
  };

  bool reused = true;
  IndexSnapshotPtr first = entry->Advance(0, 42, &reused, build);
  EXPECT_FALSE(reused);
  EXPECT_EQ(builds, 1u);
  EXPECT_EQ(first->version(), 1u);

  // Same (base, delta): adopted, not rebuilt.
  IndexSnapshotPtr second = entry->Advance(0, 42, &reused, build);
  EXPECT_TRUE(reused);
  EXPECT_EQ(builds, 1u);
  EXPECT_EQ(second, first);

  // A different delta from the same base branches off.
  IndexSnapshotPtr branch = entry->Advance(0, 43, &reused, build);
  EXPECT_FALSE(reused);
  EXPECT_EQ(builds, 2u);
  EXPECT_NE(branch, first);
  EXPECT_EQ(branch->version(), 2u);
  EXPECT_EQ(entry->memo_size(), 2u);
}

}  // namespace
}  // namespace mdmatch::candidate
