#ifndef MDMATCH_CORE_DISCOVERY_H_
#define MDMATCH_CORE_DISCOVERY_H_

#include <vector>

#include "core/md.h"
#include "schema/instance.h"
#include "sim/sim_op.h"
#include "util/random.h"

namespace mdmatch {

/// \brief MD discovery from sample data — the paper's final future-work
/// item ("develop algorithms for discovering MDs from sample data, along
/// the same lines as discovery of FDs", Section 8).
///
/// A candidate MD "LHS → (A, B)" is *confident* on a pair sample when,
/// among sampled tuple pairs matching the LHS, the RHS values are equal in
/// at least `min_confidence` of them. The search is level-wise
/// (Apriori-style over LHS conjunct sets) with two prunings:
///   - support: an LHS matched by fewer than `min_support` sampled pairs
///     is not extended (its supersets match even fewer);
///   - minimality: once LHS → (A, B) is emitted, no superset of that LHS
///     is emitted for the same RHS pair (subsumed by augmentation,
///     Lemma 3.1).
struct DiscoveryOptions {
  /// Fraction of LHS-matching pairs whose RHS values must agree exactly.
  double min_confidence = 0.95;
  /// Minimum number of LHS-matching pairs in the sample.
  size_t min_support = 10;
  /// Maximum LHS conjuncts.
  size_t max_lhs = 2;
  /// Pair sample budget. Sampling mixes sort-neighbor pairs (likely
  /// matches) with uniform pairs, like the EM trainer.
  size_t max_pairs = 50000;
  uint64_t seed = 17;
};

/// One discovered rule with its sample statistics.
struct DiscoveredMd {
  MatchingDependency md;    ///< normal form: single RHS pair
  double confidence = 0;    ///< agree / support
  size_t support = 0;       ///< LHS-matching sampled pairs
};

/// \brief Discovers MDs over the candidate conjuncts
/// `lhs_candidates` (attribute pairs + operators to try on the LHS) with
/// RHS pairs drawn from `rhs_candidates`.
///
/// Returns rules ordered by (confidence, support) descending. The
/// trivial-reflexive rules "A ≈ B → A ⇌ B" with the *equality* operator
/// are suppressed (they hold vacuously).
std::vector<DiscoveredMd> DiscoverMds(const Instance& instance,
                                      const sim::SimOpRegistry& ops,
                                      const std::vector<Conjunct>& lhs_candidates,
                                      const std::vector<AttrPair>& rhs_candidates,
                                      const DiscoveryOptions& options = {});

/// Convenience: candidate conjuncts from the comparable lists — every
/// target pair with every operator in `op_ids`.
std::vector<Conjunct> CandidateConjuncts(
    const ComparableLists& target, const std::vector<sim::SimOpId>& op_ids);

}  // namespace mdmatch

#endif  // MDMATCH_CORE_DISCOVERY_H_
