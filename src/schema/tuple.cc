#include "schema/tuple.h"

// Tuple is header-only today; this TU anchors the target and reserves the
// place for out-of-line members if the class grows.
