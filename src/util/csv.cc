#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace mdmatch {

Result<std::vector<std::vector<std::string>>> Csv::Parse(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else {
      switch (c) {
        case '"':
          if (!field_started && field.empty()) {
            in_quotes = true;
            field_started = true;
          } else {
            field.push_back(c);  // Stray quote mid-field: keep it literal.
          }
          ++i;
          break;
        case ',':
          end_field();
          ++i;
          break;
        case '\r':
          if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
          [[fallthrough]];
        case '\n':
          end_row();
          ++i;
          break;
        default:
          field.push_back(c);
          field_started = true;
          ++i;
          break;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  // Flush a final row without a trailing newline.
  if (!field.empty() || !row.empty() || field_started) end_row();
  return rows;
}

std::string Csv::EscapeField(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string Csv::Serialize(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeField(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> Csv::ReadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

Status Csv::WriteFile(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot write " + path);
  out << Serialize(rows);
  return Status::OK();
}

}  // namespace mdmatch
