#include "sim/qgram.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace mdmatch::sim {

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> grams;
  if (s.empty() || q == 0) return grams;
  std::string padded;
  padded.reserve(s.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  padded.append(s);
  padded.append(q - 1, '#');
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

namespace {

std::map<std::string, size_t> GramCounts(std::string_view s, size_t q) {
  std::map<std::string, size_t> counts;
  for (auto& g : QGrams(s, q)) ++counts[g];
  return counts;
}

}  // namespace

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  if (a.empty() && b.empty()) return 1.0;
  auto ca = GramCounts(a, q);
  auto cb = GramCounts(b, q);
  if (ca.empty() && cb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& [gram, _] : ca) {
    if (cb.count(gram)) ++inter;
  }
  size_t uni = ca.size() + cb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double QGramCosine(std::string_view a, std::string_view b, size_t q) {
  if (a.empty() && b.empty()) return 1.0;
  auto ca = GramCounts(a, q);
  auto cb = GramCounts(b, q);
  if (ca.empty() || cb.empty()) return ca.empty() == cb.empty() ? 1.0 : 0.0;
  double dot = 0, na = 0, nb = 0;
  for (const auto& [gram, cnt] : ca) {
    na += static_cast<double>(cnt) * static_cast<double>(cnt);
    auto it = cb.find(gram);
    if (it != cb.end()) dot += static_cast<double>(cnt) * static_cast<double>(it->second);
  }
  for (const auto& [gram, cnt] : cb) {
    nb += static_cast<double>(cnt) * static_cast<double>(cnt);
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double QGramOverlap(std::string_view a, std::string_view b, size_t q) {
  if (a.empty() && b.empty()) return 1.0;
  auto ca = GramCounts(a, q);
  auto cb = GramCounts(b, q);
  if (ca.empty() || cb.empty()) return ca.empty() == cb.empty() ? 1.0 : 0.0;
  size_t inter = 0;
  for (const auto& [gram, _] : ca) {
    if (cb.count(gram)) ++inter;
  }
  size_t smaller = std::min(ca.size(), cb.size());
  return static_cast<double>(inter) / static_cast<double>(smaller);
}

}  // namespace mdmatch::sim
