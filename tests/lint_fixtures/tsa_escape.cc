#include "util/thread_annotations.h"

namespace mdmatch {

int racy_counter = 0;

void UncheckedIncrement() NO_THREAD_SAFETY_ANALYSIS;

void UncheckedIncrement() NO_THREAD_SAFETY_ANALYSIS { ++racy_counter; }

}  // namespace mdmatch
