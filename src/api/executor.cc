#include "api/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <utility>

#include "api/parallel.h"
#include "candidate/windowing.h"
#include "match/blocking.h"
#include "match/clustering.h"
#include "util/arena.h"
#include "util/stopwatch.h"

namespace mdmatch::api {

using internal::ParallelChunks;
using internal::SameShape;

Executor::Executor(PlanPtr plan, ExecutorOptions options)
    : plan_(std::move(plan)), options_(options) {
  assert(plan_ != nullptr && "Executor requires a compiled plan");
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.pair_cache_capacity > 0) {
    pair_cache_ = std::make_unique<match::PairDecisionCache>(
        options_.pair_cache_capacity, /*shards=*/16,
        options_.cache_doorkeeper);
  }
}

Status Executor::CheckBatch(const Instance& batch) const {
  if (!SameShape(batch.left().schema(), plan_->pair().left()) ||
      !SameShape(batch.right().schema(), plan_->pair().right())) {
    return Status::InvalidArgument(
        "batch schema does not match the plan's schema pair");
  }
  return Status::OK();
}

ExecutionReport Executor::RunChecked(const Instance& batch,
                                     size_t match_threads,
                                     const MatchSink* sink) const {
  const MatchPlan& plan = *plan_;
  ExecutionReport report;

  // --- candidate generation from the precompiled keys ---
  {
    ScopedTimer timer(&report.timings.candidate_seconds);
    if (plan.options().candidates == PlanOptions::Candidates::kWindowing) {
      report.candidates = candidate::WindowCandidatesMultiPass(
          batch, plan.sort_keys(), plan.options().window_size);
    } else {
      report.candidates = match::BlockCandidates(batch, plan.block_key());
    }
  }

  // --- matching over the candidates ---
  {
    ScopedTimer timer(&report.timings.match_seconds);
    const auto& pairs = report.candidates.pairs();
    report.pairs_compared = pairs.size();

    // Per-record derived values (phonetic codes, q-gram sets) are columnar
    // per batch side: computed once per record here instead of once per
    // candidate pair inside the evaluator.
    const match::CompiledEvaluator& evaluator = plan.evaluator();
    std::vector<match::RecordProfile> profiles[2];
    if (evaluator.needs_profiles() && !pairs.empty()) {
      for (int side = 0; side < 2; ++side) {
        const Relation& rel = side == 0 ? batch.left() : batch.right();
        profiles[side].reserve(rel.size());
        for (size_t i = 0; i < rel.size(); ++i) {
          profiles[side].push_back(
              evaluator.ProfileRecord(rel.tuple(i), side));
        }
      }
    }
    // Same for the cache key fingerprints: one hash per record, not pair.
    match::PairDecisionCache* cache = pair_cache_.get();
    const match::PairDecisionCache::Stats cache_before =
        cache != nullptr ? cache->stats() : match::PairDecisionCache::Stats{};
    std::vector<uint64_t> fingerprints[2];
    if (cache != nullptr && !pairs.empty()) {
      for (int side = 0; side < 2; ++side) {
        const Relation& rel = side == 0 ? batch.left() : batch.right();
        fingerprints[side].reserve(rel.size());
        for (size_t i = 0; i < rel.size(); ++i) {
          fingerprints[side].push_back(
              match::TupleFingerprint(rel.tuple(i)));
        }
      }
    }
    std::atomic<size_t> cache_hits{0};

    auto matches_pair = [&](uint32_t l, uint32_t r) {
      const Tuple& left = batch.left().tuple(l);
      const Tuple& right = batch.right().tuple(r);
      auto evaluate = [&] {
        return plan.MatchesPair(
            left, right, profiles[0].empty() ? nullptr : &profiles[0][l],
            profiles[1].empty() ? nullptr : &profiles[1][r]);
      };
      if (cache == nullptr) return evaluate();
      return cache->GetOrCompute(
          match::PairDecisionCache::Key{left.id(), right.id(),
                                        fingerprints[0][l],
                                        fingerprints[1][r]},
          &cache_hits, evaluate);
    };

    // Scale workers so each gets at least min_pairs_per_thread pairs;
    // below that the stage stays sequential.
    size_t workers = match_threads;
    if (options_.min_pairs_per_thread > 0) {
      workers = std::min(workers,
                         pairs.size() / options_.min_pairs_per_thread);
    }
    if (workers == 0) workers = 1;

    if (options_.batch_eval && evaluator.BatchProfitable() && !pairs.empty()) {
      // --- SoA batch path: strips of pairs, atom-at-a-time SIMD kernels,
      // arena-backed transients. Decisions are bit-identical to the
      // scalar loops below.
      util::Arena arena;
      match::ValueInterner interner;
      match::BatchColumns cols[2];
      for (int side = 0; side < 2; ++side) {
        const Relation& rel = side == 0 ? batch.left() : batch.right();
        cols[side] = evaluator.MakeBatchColumns(side, rel.size(), &arena);
        for (size_t i = 0; i < rel.size(); ++i) {
          evaluator.FillBatchRow(
              &cols[side], static_cast<uint32_t>(i), rel.tuple(i),
              profiles[side].empty() ? nullptr : &profiles[side][i],
              &interner);
        }
      }
      // Probe the cache once per pair up front (one Lookup per pair,
      // exactly like GetOrCompute); decided lanes skip evaluation.
      uint8_t* decided = arena.AllocateArrayOf<uint8_t>(pairs.size());
      uint8_t* decision = arena.AllocateArrayOf<uint8_t>(pairs.size());
      size_t probe_hits = 0;
      for (size_t i = 0; i < pairs.size(); ++i) {
        decided[i] = 0;
        decision[i] = 0;
        if (cache == nullptr) continue;
        const auto& [l, r] = pairs[i];
        if (auto cached = cache->Lookup(match::PairDecisionCache::Key{
                batch.left().tuple(l).id(), batch.right().tuple(r).id(),
                fingerprints[0][l], fingerprints[1][r]})) {
          decided[i] = 1;
          decision[i] = *cached ? 1 : 0;
          ++probe_hits;
        }
      }
      const candidate::PairStrips strips =
          candidate::BuildStrips(pairs, &arena);
      uint8_t* lane_skip = arena.AllocateArrayOf<uint8_t>(strips.lanes);
      uint8_t* lane_dec = arena.AllocateArrayOf<uint8_t>(strips.lanes);
      for (size_t lane = 0; lane < strips.lanes; ++lane) {
        lane_skip[lane] = decided[strips.lane_pair[lane]];
        lane_dec[lane] = 0;
      }
      match::BatchStats stats;
      if (workers <= 1 || strips.num_batches <= 1) {
        for (size_t b = 0; b < strips.num_batches; ++b) {
          const uint32_t first = strips.batch_first_lane[b];
          evaluator.MatchesBatch(cols[0], cols[1], strips.batches[b],
                                 lane_skip + first, lane_dec + first,
                                 &stats);
        }
      } else {
        std::vector<match::BatchStats> worker_stats(workers);
        ParallelChunks(strips.num_batches, workers,
                       [&](size_t w, size_t begin, size_t end) {
                         for (size_t b = begin; b < end; ++b) {
                           const uint32_t first = strips.batch_first_lane[b];
                           evaluator.MatchesBatch(
                               cols[0], cols[1], strips.batches[b],
                               lane_skip + first, lane_dec + first,
                               &worker_stats[w]);
                         }
                       });
        for (const match::BatchStats& s : worker_stats) {
          stats.strips += s.strips;
          stats.lanes += s.lanes;
          stats.simd_lanes_evaluated += s.simd_lanes_evaluated;
        }
      }
      for (size_t lane = 0; lane < strips.lanes; ++lane) {
        const uint32_t p = strips.lane_pair[lane];
        if (decided[p] == 0) decision[p] = lane_dec[lane];
      }
      // Original pair order for inserts and result merging, matching the
      // sequential scalar loop exactly.
      for (size_t i = 0; i < pairs.size(); ++i) {
        const auto& [l, r] = pairs[i];
        if (cache != nullptr && decided[i] == 0) {
          cache->Insert(
              match::PairDecisionCache::Key{batch.left().tuple(l).id(),
                                            batch.right().tuple(r).id(),
                                            fingerprints[0][l],
                                            fingerprints[1][r]},
              decision[i] != 0);
        }
        if (decision[i] != 0) report.matches.Add(l, r);
      }
      cache_hits.store(probe_hits);
      report.strips = stats.strips;
      report.simd_lanes_evaluated = stats.simd_lanes_evaluated;
      report.arena_bytes = arena.bytes_used();
    } else if (workers <= 1) {
      for (const auto& [l, r] : pairs) {
        if (matches_pair(l, r)) report.matches.Add(l, r);
      }
    } else {
      // Each worker fills its own chunk-local list; chunks are merged in
      // index order, so the result is identical to the sequential run.
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> local(workers);
      ParallelChunks(pairs.size(), workers,
                     [&](size_t w, size_t begin, size_t end) {
                       auto& out = local[w];
                       for (size_t i = begin; i < end; ++i) {
                         const auto& [l, r] = pairs[i];
                         if (matches_pair(l, r)) out.emplace_back(l, r);
                       }
                     });
      for (const auto& chunk : local) {
        for (const auto& [l, r] : chunk) report.matches.Add(l, r);
      }
    }
    report.cache_hits = cache_hits.load();
    if (cache != nullptr) {
      const match::PairDecisionCache::Stats after = cache->stats();
      report.cache_lookups = (after.hits - cache_before.hits) +
                             (after.misses - cache_before.misses);
      report.cache_evictions = after.evictions - cache_before.evictions;
    }
  }

  // --- optional transitive closure into entity clusters ---
  if (plan.options().transitive_closure) {
    ScopedTimer timer(&report.timings.closure_seconds);
    report.matches =
        match::ClusterMatches(report.matches, batch).ImpliedMatches();
  }

  // --- ground-truth metrics ---
  if (options_.evaluate_quality) {
    ScopedTimer timer(&report.timings.evaluate_seconds);
    report.match_quality = match::Evaluate(report.matches, batch);
    report.candidate_quality =
        match::EvaluateCandidates(report.candidates, batch);
  }

  if (sink != nullptr) {
    for (const auto& [l, r] : report.matches.pairs()) (*sink)(l, r);
  }
  return report;
}

Result<ExecutionReport> Executor::Run(const Instance& batch) const {
  MDMATCH_RETURN_NOT_OK(CheckBatch(batch));
  return RunChecked(batch, options_.num_threads, nullptr);
}

Result<ExecutionReport> Executor::Run(const Instance& batch,
                                      const MatchSink& sink) const {
  MDMATCH_RETURN_NOT_OK(CheckBatch(batch));
  return RunChecked(batch, options_.num_threads, &sink);
}

Result<std::vector<ExecutionReport>> Executor::RunBatches(
    const std::vector<const Instance*>& batches) const {
  for (const Instance* batch : batches) {
    if (batch == nullptr) {
      return Status::InvalidArgument("RunBatches: null batch");
    }
    MDMATCH_RETURN_NOT_OK(CheckBatch(*batch));
  }

  std::vector<ExecutionReport> reports(batches.size());
  if (options_.num_threads <= 1 || batches.size() <= 1) {
    for (size_t i = 0; i < batches.size(); ++i) {
      // Sequential mode still honors in-batch parallelism.
      reports[i] = RunChecked(*batches[i], options_.num_threads, nullptr);
    }
    return reports;
  }

  // Whole batches are the unit of parallelism; workers pull the next
  // unprocessed index so skewed batch sizes balance out.
  std::atomic<size_t> next{0};
  const size_t workers = std::min(options_.num_threads, batches.size());
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < batches.size();
           i = next.fetch_add(1)) {
        reports[i] = RunChecked(*batches[i], /*match_threads=*/1, nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  return reports;
}

}  // namespace mdmatch::api
