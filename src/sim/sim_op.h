#ifndef MDMATCH_SIM_SIM_OP_H_
#define MDMATCH_SIM_SIM_OP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mdmatch::sim {

/// Identifier of a similarity operator within a SimOpRegistry.
/// Id 0 is always the equality operator "=".
using SimOpId = int32_t;

/// What family a registered operator belongs to. The registry records this
/// for every convenience registration so that compiled evaluators
/// (match::CompiledEvaluator) can specialize the hot per-pair path —
/// precomputing phonetic codes or q-gram sets per record, or calling the
/// metric directly instead of going through the type-erased Predicate.
/// Operators installed via the generic Register() are kCustom and always
/// evaluated through the predicate.
enum class SimOpKind : uint8_t {
  kEquality,     ///< "=" (id 0)
  kCustom,       ///< user predicate; opaque to compiled evaluators
  kDl,           ///< DlSimilar(a, b, threshold)
  kLevenshtein,  ///< LevenshteinDistanceBounded(a, b, param) <= param
  kJaro,         ///< JaroSimilarity >= threshold
  kJaroWinkler,  ///< JaroWinklerSimilarity >= threshold
  kQGram2,       ///< QGramJaccard(a, b, 2) >= threshold
  kSoundex,      ///< Soundex(a) == Soundex(b)
  kNysiis,       ///< Nysiis(a) == Nysiis(b)
  kPrefix,       ///< first param characters equal
};

/// Structured description of one operator: its family plus the parameters
/// it was registered with. `threshold` is meaningful for the real-valued
/// metrics, `param` for the integer-parameterized ones.
struct SimOpInfo {
  SimOpKind kind = SimOpKind::kCustom;
  double threshold = 0.0;
  size_t param = 0;
};

/// \brief The fixed set Θ of domain-specific similarity operators
/// (paper Section 2.1).
///
/// Every registered predicate must obey the paper's generic axioms:
///   - reflexive:          x ≈ x
///   - symmetric:          x ≈ y implies y ≈ x
///   - subsumes equality:  x = y implies x ≈ y
/// Registered predicates are wrapped so that x == y short-circuits to true,
/// which enforces reflexivity/subsumption mechanically; symmetry is the
/// predicate author's obligation (all built-ins are symmetric metrics) and
/// is validated by the property tests.
///
/// Transitivity is deliberately NOT assumed (except for "="): the
/// deduction machinery in core/ never exploits it.
class SimOpRegistry {
 public:
  using Predicate =
      std::function<bool(std::string_view, std::string_view)>;

  static constexpr SimOpId kEq = 0;

  /// Creates a registry that contains only "=".
  SimOpRegistry();

  /// Registers a predicate under a unique name; InvalidArgument on a
  /// duplicate name.
  Result<SimOpId> Register(std::string name, Predicate pred);

  /// Convenience registrations for the standard metrics. Names encode the
  /// parameters, e.g. "dl@0.80", "jaro@0.90", "jw@0.90", "qgram2@0.70",
  /// "soundex", "prefix4". Re-registering the same name returns the
  /// existing id (these are idempotent).
  SimOpId Dl(double theta);
  SimOpId Levenshtein(size_t max_dist);
  SimOpId Jaro(double threshold);
  SimOpId JaroWinkler(double threshold);
  SimOpId QGramJaccard2(double threshold);
  SimOpId SoundexEq();
  SimOpId NysiisEq();
  SimOpId PrefixEq(size_t k);

  /// Evaluates operator `id` on (a, b); id must be valid.
  bool Eval(SimOpId id, std::string_view a, std::string_view b) const;

  /// Structured metadata of operator `id` (kind + parameters). Predicates
  /// registered through Register() report kCustom; the convenience
  /// registrations report their family and the parameters the stored
  /// predicate actually uses (first registration under a name wins, so the
  /// info always describes the installed predicate).
  const SimOpInfo& Info(SimOpId id) const;

  /// Name lookup; NotFound when the name is unknown.
  Result<SimOpId> Find(std::string_view name) const;

  const std::string& Name(SimOpId id) const;
  bool IsValid(SimOpId id) const {
    return id >= 0 && static_cast<size_t>(id) < ops_.size();
  }
  /// Number of registered operators, including "=".
  size_t size() const { return ops_.size(); }

  /// Registry with the default operator suite installed (dl@0.80 and
  /// friends); the experimental sections of the paper use dl@0.80.
  static SimOpRegistry Default();

 private:
  struct Op {
    std::string name;
    Predicate pred;
    SimOpInfo info;
  };
  SimOpId FindOrRegister(std::string name, SimOpInfo info, Predicate pred);

  std::vector<Op> ops_;
};

}  // namespace mdmatch::sim

#endif  // MDMATCH_SIM_SIM_OP_H_
