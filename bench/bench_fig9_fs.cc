// Figures 9(a), 9(b), 9(c): the Fellegi-Sunter method with and without
// RCKs. FSrck compares the union of the top five RCKs (θ = 0.8 similarity
// test); FS compares an EM-picked attribute vector of the same size.
// Both classify the same windowing candidates (window size 10, shared
// keys), as in the paper's Exp-2.
//
// FSrck goes through the Plan/Executor API: the plan (deduction + vector
// + EM training) is compiled once per dataset and could be executed over
// any number of batches; the reported time is EM training plus the
// executor's match stage, mirroring the baseline's Train+Match span.

#include <cstdio>
#include <iostream>

#include "api/executor.h"
#include "bench_common.h"
#include "match/evaluation.h"
#include "match/fellegi_sunter.h"
#include "match/hs_rules.h"
#include "match/windowing.h"

using namespace mdmatch;
using namespace mdmatch::match;

int main() {
  std::printf(
      "== Figure 9(a,b,c): Fellegi-Sunter with vs without RCKs ==\n");
  TableWriter table({"K", "FSrck prec", "FS prec", "FSrck recall",
                     "FS recall", "FSrck time(s)", "FS time(s)"});
  for (size_t k : bench::KRange()) {
    sim::SimOpRegistry ops;
    datagen::CreditBillingOptions gen;
    gen.num_base = k;
    gen.seed = 1000 + k;
    datagen::CreditBillingData data =
        datagen::GenerateCreditBilling(gen, &ops);

    auto window_keys = StandardWindowKeys(data.pair);
    CandidateSet candidates =
        WindowCandidatesMultiPass(data.instance, window_keys, 10);

    // FSrck: compile the plan once (RCK-union comparison vector, EM
    // trained inside Build), then execute.
    api::PlanOptions options;
    options.matcher = api::PlanOptions::Matcher::kFellegiSunter;
    auto plan = bench::CompileExperimentPlan(data, &ops, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    api::Executor executor(*plan);
    auto run = executor.Run(data.instance);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    MatchQuality q_rck = run->match_quality;
    double t_rck = (*plan)->compile_stats().train_seconds +
                   run->timings.match_seconds;

    // FS baseline: EM-picked vector of the same size. Its timed span
    // (vector selection + train + match) mirrors t_rck's train + match;
    // ground-truth evaluation stays outside both.
    MatchResult fs_matches;
    double t_fs = bench::TimedSeconds([&] {
      ComparisonVector em_vector = SelectVectorByEm(
          data.instance, ops, data.target, ops.Dl(0.8),
          (*plan)->fs()->vector().size());
      FellegiSunter fs(em_vector);
      if (auto st = fs.Train(data.instance, ops); !st.ok()) {
        std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      fs_matches = fs.Match(data.instance, ops, candidates);
    });
    MatchQuality q_fs = Evaluate(fs_matches, data.instance);

    table.AddRow({std::to_string(k / 1000) + "k",
                  TableWriter::Num(100 * q_rck.precision, 1),
                  TableWriter::Num(100 * q_fs.precision, 1),
                  TableWriter::Num(100 * q_rck.recall, 1),
                  TableWriter::Num(100 * q_fs.recall, 1),
                  TableWriter::Num(t_rck, 2), TableWriter::Num(t_fs, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: FSrck beats FS on precision (up to 20%% at 80k) with "
      "comparable recall and runtime; FSrck is less sensitive to K.\n");
  return 0;
}
