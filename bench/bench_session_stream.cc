// Incremental ingest vs. full re-run: the economics the MatchSession
// exists for. A standing corpus absorbs an insert-heavy stream of small
// deltas; each delta is matched two ways — (a) MatchSession::Flush
// against the persistent indexes, (b) a stateless Executor::Run over the
// whole concatenated corpus — with identical results (asserted) and very
// different costs.
//
// Each flush is broken into its phases (index merge, candidate scan, pair
// eval, drift re-rank) so the delta-independent bookkeeping costs are
// visible separately from the delta-proportional matching work — the
// ROADMAP "re-profile flushes" evidence. Emits an aligned table and
// machine-readable BENCH_session.json (perf trajectory point for this
// bench across PRs).
//
// MDMATCH_BENCH_FULL=1 runs the large corpus (>= 50k standing records);
// MDMATCH_BENCH_TINY=1 shrinks everything for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/executor.h"
#include "api/session.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace mdmatch;

namespace {

bool TinyRun() {
  const char* env = std::getenv("MDMATCH_BENCH_TINY");
  return env != nullptr && std::string(env) == "1";
}

std::vector<std::pair<uint32_t, uint32_t>> SortedPairs(
    const match::PairSet& set) {
  auto pairs = set.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

int main() {
  sim::SimOpRegistry ops;
  datagen::CreditBillingOptions gen;
  // K = 20000 base tuples per relation plus 80% duplicates is ~72k records
  // total, i.e. a standing corpus of ~57k records after the 80% bulk load —
  // comfortably past the 50k bar the flush-phase profile targets.
  gen.num_base = TinyRun() ? 300 : (bench::FullRun() ? 20000 : 4000);
  gen.seed = 7100;
  datagen::CreditBillingData data = datagen::GenerateCreditBilling(gen, &ops);

  api::PlanOptions options;
  auto plan = bench::CompileExperimentPlan(data, &ops, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // 80% of the data is the standing corpus (bulk-loaded once); the rest
  // streams in as 10 equal insert-only deltas.
  const size_t nl = data.instance.left().size();
  const size_t nr = data.instance.right().size();
  const size_t base_l = nl * 8 / 10;
  const size_t base_r = nr * 8 / 10;
  constexpr size_t kDeltas = 10;

  api::SessionOptions session_options;
  api::MatchSession session(*plan, session_options);
  for (size_t i = 0; i < base_l; ++i) {
    (void)session.Upsert(0, data.instance.left().tuple(i));
  }
  for (size_t i = 0; i < base_r; ++i) {
    (void)session.Upsert(1, data.instance.right().tuple(i));
  }
  double bulk_seconds = bench::TimedSeconds([&] { (void)session.Flush(); });

  std::printf("== Incremental ingest vs. full re-run (K = %zu, %zu + %zu "
              "standing) ==\n",
              gen.num_base, base_l, base_r);
  TableWriter table({"delta", "records", "merge (s)", "scan (s)", "eval (s)",
                     "rerank (s)", "publish (s)", "incremental (s)",
                     "full rerun (s)", "speedup", "matches"});

  double total_incremental = 0;
  double total_full = 0;
  double total_merge = 0;
  double total_scan = 0;
  double total_eval = 0;
  double total_rerank = 0;
  double total_publish = 0;
  size_t total_publish_bytes = 0;
  std::vector<std::string> delta_json;
  for (size_t d = 0; d < kDeltas; ++d) {
    const size_t lo_l = base_l + d * (nl - base_l) / kDeltas;
    const size_t hi_l = base_l + (d + 1) * (nl - base_l) / kDeltas;
    const size_t lo_r = base_r + d * (nr - base_r) / kDeltas;
    const size_t hi_r = base_r + (d + 1) * (nr - base_r) / kDeltas;
    for (size_t i = lo_l; i < hi_l; ++i) {
      (void)session.Upsert(0, data.instance.left().tuple(i));
    }
    for (size_t i = lo_r; i < hi_r; ++i) {
      (void)session.Upsert(1, data.instance.right().tuple(i));
    }

    double inc_seconds = 0;
    api::IngestReport report;
    {
      auto flushed = session.Flush();
      if (!flushed.ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.status().ToString().c_str());
        return 1;
      }
      report = *flushed;
      inc_seconds = report.index_seconds + report.match_seconds +
                    report.cluster_seconds;
    }

    // The stateless alternative: re-run the whole corpus.
    Instance corpus = session.Corpus();
    double full_seconds = 0;
    match::MatchResult full_matches;
    {
      api::ExecutorOptions exec;
      exec.evaluate_quality = false;
      api::Executor full(*plan, exec);
      full_seconds = bench::TimedSeconds([&] {
        auto run = full.Run(corpus);
        if (run.ok()) full_matches = std::move(run->matches);
      });
    }
    if (SortedPairs(session.Matches()) != SortedPairs(full_matches)) {
      std::fprintf(stderr,
                   "BUG: incremental and full-rerun matches differ at "
                   "delta %zu\n",
                   d);
      return 1;
    }

    total_incremental += inc_seconds;
    total_full += full_seconds;
    total_merge += report.merge_seconds;
    total_scan += report.scan_seconds;
    total_eval += report.eval_seconds;
    total_rerank += report.rerank_seconds;
    total_publish += report.publish_seconds;
    total_publish_bytes += report.publish_bytes_copied;
    const size_t delta_records = (hi_l - lo_l) + (hi_r - lo_r);
    table.AddRow({std::to_string(d + 1), std::to_string(delta_records),
                  TableWriter::Num(report.merge_seconds, 4),
                  TableWriter::Num(report.scan_seconds, 4),
                  TableWriter::Num(report.eval_seconds, 4),
                  TableWriter::Num(report.rerank_seconds, 4),
                  TableWriter::Num(report.publish_seconds, 4),
                  TableWriter::Num(inc_seconds, 4),
                  TableWriter::Num(full_seconds, 4),
                  TableWriter::Num(full_seconds / std::max(1e-9, inc_seconds),
                                   1),
                  std::to_string(report.total_matches)});
    delta_json.push_back(StringPrintf(
        "    {\"delta\": %zu, \"records\": %zu, \"merge_seconds\": %.6f, "
        "\"scan_seconds\": %.6f, \"eval_seconds\": %.6f, "
        "\"rerank_seconds\": %.6f, \"publish_seconds\": %.6f, "
        "\"publish_bytes_copied\": %zu, \"index_seconds\": %.6f, "
        "\"match_seconds\": %.6f, \"cluster_seconds\": %.6f, "
        "\"pairs_evaluated\": %zu, \"incremental_seconds\": %.6f, "
        "\"full_rerun_seconds\": %.6f, \"matches\": %zu}",
        d + 1, delta_records, report.merge_seconds, report.scan_seconds,
        report.eval_seconds, report.rerank_seconds, report.publish_seconds,
        report.publish_bytes_copied, report.index_seconds,
        report.match_seconds, report.cluster_seconds, report.pairs_evaluated,
        inc_seconds, full_seconds, report.total_matches));
  }
  table.Print(std::cout);
  std::printf("\nbulk load %.3fs; totals: incremental %.4fs vs full re-runs "
              "%.4fs (%.1fx)\n",
              bulk_seconds, total_incremental, total_full,
              total_full / std::max(1e-9, total_incremental));
  std::printf("flush phases: merge %.4fs, scan %.4fs, eval %.4fs, rerank "
              "%.4fs, publish %.4fs / %zu bytes copied (bookkeeping %.4fs)\n",
              total_merge, total_scan, total_eval, total_rerank,
              total_publish, total_publish_bytes,
              total_incremental - total_merge - total_scan - total_eval -
                  total_rerank - total_publish);

  std::ofstream json("BENCH_session.json");
  json << "{\n  \"bench\": \"session_stream\",\n";
  json << StringPrintf("  \"k\": %zu,\n  \"standing_left\": %zu,\n"
                       "  \"standing_right\": %zu,\n"
                       "  \"bulk_load_seconds\": %.6f,\n",
                       gen.num_base, base_l, base_r, bulk_seconds);
  json << "  \"deltas\": [\n";
  for (size_t i = 0; i < delta_json.size(); ++i) {
    json << delta_json[i] << (i + 1 < delta_json.size() ? ",\n" : "\n");
  }
  json << "  ],\n";
  json << StringPrintf("  \"total_merge_seconds\": %.6f,\n"
                       "  \"total_scan_seconds\": %.6f,\n"
                       "  \"total_eval_seconds\": %.6f,\n"
                       "  \"total_rerank_seconds\": %.6f,\n"
                       "  \"total_publish_seconds\": %.6f,\n"
                       "  \"total_publish_bytes_copied\": %zu,\n",
                       total_merge, total_scan, total_eval, total_rerank,
                       total_publish, total_publish_bytes);
  json << StringPrintf("  \"total_incremental_seconds\": %.6f,\n"
                       "  \"total_full_rerun_seconds\": %.6f,\n"
                       "  \"speedup\": %.2f\n}\n",
                       total_incremental, total_full,
                       total_full / std::max(1e-9, total_incremental));
  std::printf("wrote BENCH_session.json\n");
  return 0;
}
