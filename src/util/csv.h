#ifndef MDMATCH_UTIL_CSV_H_
#define MDMATCH_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mdmatch {

/// \brief Minimal RFC-4180-style CSV support: quoted fields, embedded
/// commas, embedded quotes ("" escaping) and embedded newlines.
///
/// Used to export generated datasets and to load external data into
/// relations; not a general streaming parser (files at our scale fit in
/// memory comfortably).
class Csv {
 public:
  /// Parses one CSV document into rows of fields.
  /// Fails with ParseError on an unterminated quoted field.
  static Result<std::vector<std::vector<std::string>>> Parse(
      std::string_view text);

  /// Serializes rows, quoting fields only when needed.
  static std::string Serialize(
      const std::vector<std::vector<std::string>>& rows);

  /// Quotes a single field if it contains a comma, quote or newline.
  static std::string EscapeField(std::string_view field);

  /// Reads and parses a file. NotFound if unreadable.
  static Result<std::vector<std::vector<std::string>>> ReadFile(
      const std::string& path);

  /// Serializes and writes rows to a file.
  static Status WriteFile(const std::string& path,
                          const std::vector<std::vector<std::string>>& rows);
};

}  // namespace mdmatch

#endif  // MDMATCH_UTIL_CSV_H_
