#include "core/quality.h"

#include <set>

namespace mdmatch {

void QualityModel::EstimateLengthsFromData(const Instance& instance,
                                           const MdSet& sigma,
                                           const ComparableLists& target) {
  std::set<AttrPair> pairs;
  for (size_t i = 0; i < target.size(); ++i) pairs.insert(target.pair_at(i));
  for (const auto& md : sigma) {
    for (const auto& c : md.lhs()) pairs.insert(c.attrs);
    for (const auto& p : md.rhs()) pairs.insert(p);
  }
  for (const AttrPair& p : pairs) {
    double total = 0;
    size_t count = 0;
    for (const auto& t : instance.left().tuples()) {
      total += static_cast<double>(t.value(p.left).size());
      ++count;
    }
    for (const auto& t : instance.right().tuples()) {
      total += static_cast<double>(t.value(p.right).size());
      ++count;
    }
    lt_[p] = count == 0 ? 0.0 : total / static_cast<double>(count);
  }
}

int QualityModel::Count(AttrPair p) const {
  auto it = ct_.find(p);
  return it == ct_.end() ? 0 : it->second;
}

double QualityModel::Cost(AttrPair p) const {
  double ct = Count(p);
  auto lt_it = lt_.find(p);
  double lt = lt_it == lt_.end() ? 0.0 : lt_it->second;
  auto ac_it = ac_.find(p);
  double ac = ac_it == ac_.end() ? 1.0 : ac_it->second;
  return w1_ * ct + w2_ * lt + (ac > 0 ? w3_ / ac : w3_ * 1e9);
}

double QualityModel::KeyCost(const RelativeKey& key) const {
  double total = 0;
  for (const auto& e : key.elements()) total += Cost(e.attrs);
  return total;
}

double QualityModel::LhsCost(const MatchingDependency& md) const {
  double total = 0;
  for (const auto& c : md.lhs()) total += Cost(c.attrs);
  return total;
}

}  // namespace mdmatch
