// Seeded hot-loop-alloc violations: per-iteration container churn in a
// pretend match-layer hot loop. NOT compiled; see README.md.

#include <cstdint>
#include <string>
#include <vector>

namespace mdmatch::match {

int EvaluateAll(const std::vector<uint32_t>& rows) {
  int matched = 0;
  // Hoisted scratch: the right pattern, not a finding.
  std::vector<uint32_t> scratch;
  for (uint32_t row : rows) {
    std::vector<uint32_t> ids;  // finding: fresh vector every pair
    std::string key;            // finding: fresh string every pair
    ids.push_back(row);
    key += 'x';
    matched += static_cast<int>(ids.size() + key.size());

    scratch.clear();                 // reuse of hoisted scratch: clean
    const std::string& alias = key;  // reference: clean
    std::vector<uint32_t>::size_type n = scratch.size();  // nested name:
                                                          // clean
    matched += static_cast<int>(alias.size() + n);

    // mdmatch-lint: allow(hot-loop-alloc) cold slow path, runs once per
    // flush not per pair
    std::vector<uint32_t> slow_path(row % 4);
    matched += static_cast<int>(slow_path.size());
  }
  while (matched > 0) {
    std::string tail;  // finding: fresh string every iteration
    matched -= static_cast<int>(tail.size()) + 1;
  }
  return matched;
}

}  // namespace mdmatch::match
