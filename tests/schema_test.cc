#include "schema/schema.h"

#include <gtest/gtest.h>

#include "schema/instance.h"
#include "schema/relation.h"
#include "schema/tuple.h"
#include "util/csv.h"

namespace mdmatch {
namespace {

Schema PersonSchema() {
  return Schema("person", {{"name", "name"},
                           {"addr", "address"},
                           {"phone", "phone"}});
}

Schema AccountSchema() {
  return Schema("account", {{"holder", "name"},
                            {"location", "address"},
                            {"tel", "phone"},
                            {"balance", "money"}});
}

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, ArityAndAttributeAccess) {
  Schema s = PersonSchema();
  EXPECT_EQ(s.name(), "person");
  EXPECT_EQ(s.arity(), 3);
  EXPECT_EQ(s.attribute(0).name, "name");
  EXPECT_EQ(s.attribute(2).domain, "phone");
}

TEST(SchemaTest, FindByName) {
  Schema s = PersonSchema();
  auto id = s.Find("addr");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
  EXPECT_FALSE(s.Find("missing").ok());
  EXPECT_EQ(s.Find("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, IsValidRange) {
  Schema s = PersonSchema();
  EXPECT_TRUE(s.IsValid(0));
  EXPECT_TRUE(s.IsValid(2));
  EXPECT_FALSE(s.IsValid(3));
  EXPECT_FALSE(s.IsValid(-1));
}

TEST(SchemaPairTest, TotalAttrsIsTheoremH) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  EXPECT_EQ(pair.total_attrs(), 7);
  EXPECT_EQ(pair.side(0).name(), "person");
  EXPECT_EQ(pair.side(1).name(), "account");
}

TEST(QualifiedAttrTest, DenseIndexAndToString) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  QualifiedAttr left{0, 2};
  QualifiedAttr right{1, 0};
  EXPECT_EQ(left.Index(pair), 2);
  EXPECT_EQ(right.Index(pair), 3);  // offset by left arity
  EXPECT_EQ(left.ToString(pair), "person[phone]");
  EXPECT_EQ(right.ToString(pair), "account[holder]");
}

TEST(QualifiedAttrTest, OrderingAndEquality) {
  QualifiedAttr a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (QualifiedAttr{0, 1}));
}

// -------------------------------------------------------- ComparableLists

TEST(ComparableListsTest, MakeValidatesDomains) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  auto ok = ComparableLists::Make(pair, {0, 1}, {0, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  // name-domain vs money-domain: rejected.
  auto bad = ComparableLists::Make(pair, {0}, {3});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ComparableListsTest, MakeRejectsLengthMismatch) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  EXPECT_FALSE(ComparableLists::Make(pair, {0, 1}, {0}).ok());
}

TEST(ComparableListsTest, MakeRejectsOutOfRangeIds) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  EXPECT_FALSE(ComparableLists::Make(pair, {5}, {0}).ok());
  EXPECT_FALSE(ComparableLists::Make(pair, {0}, {9}).ok());
}

TEST(ComparableListsTest, MakeByNameResolves) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  auto lists =
      ComparableLists::MakeByName(pair, {"name", "phone"}, {"holder", "tel"});
  ASSERT_TRUE(lists.ok());
  EXPECT_EQ(lists->pair_at(0), (AttrPair{0, 0}));
  EXPECT_EQ(lists->pair_at(1), (AttrPair{2, 2}));
  EXPECT_TRUE(lists->Contains({0, 0}));
  EXPECT_FALSE(lists->Contains({0, 2}));
}

TEST(ComparableListsTest, MakeByNameUnknownAttribute) {
  SchemaPair pair(PersonSchema(), AccountSchema());
  EXPECT_FALSE(ComparableLists::MakeByName(pair, {"nope"}, {"holder"}).ok());
}

// ------------------------------------------------------------------ Tuple

TEST(TupleTest, ValueAccessAndEntity) {
  Tuple t(7, {"Ann", "1 Elm", "555"}, 42);
  EXPECT_EQ(t.id(), 7);
  EXPECT_EQ(t.entity(), 42);
  EXPECT_EQ(t.value(0), "Ann");
  t.set_value(0, "Anne");
  EXPECT_EQ(t.value(0), "Anne");
  EXPECT_EQ(t.arity(), 3u);
}

TEST(TupleTest, DefaultEntityUnknown) {
  Tuple t(1, {"x"});
  EXPECT_EQ(t.entity(), kEntityUnknown);
}

// --------------------------------------------------------------- Relation

TEST(RelationTest, AppendAssignsSequentialIds) {
  Relation r(PersonSchema());
  auto id0 = r.Append({"Ann", "1 Elm", "555"});
  auto id1 = r.Append({"Bob", "2 Oak", "777"});
  ASSERT_TRUE(id0.ok() && id1.ok());
  EXPECT_EQ(*id0, 0);
  EXPECT_EQ(*id1, 1);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(1).value(0), "Bob");
}

TEST(RelationTest, AppendRejectsWrongArity) {
  Relation r(PersonSchema());
  auto bad = r.Append({"only-one"});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, AppendTuplePreservesIdAndAdvancesCounter) {
  Relation r(PersonSchema());
  ASSERT_TRUE(r.AppendTuple(Tuple(10, {"Ann", "1 Elm", "555"})).ok());
  auto next = r.Append({"Bob", "2 Oak", "777"});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 11);  // ids never collide with pre-identified tuples
}

TEST(RelationTest, FindById) {
  Relation r(PersonSchema());
  (void)r.Append({"Ann", "1 Elm", "555"});
  (void)r.Append({"Bob", "2 Oak", "777"});
  auto pos = r.FindById(1);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 1u);
  EXPECT_FALSE(r.FindById(99).ok());
}

TEST(RelationTest, CsvRoundTrip) {
  Relation r(PersonSchema());
  (void)r.Append({"Ann, A.", "1 Elm", "555"});
  (void)r.Append({"Bob", "2 \"Oak\"", "777"});
  auto rows = r.ToCsvRows();
  ASSERT_EQ(rows.size(), 3u);
  auto back = Relation::FromCsvRows(PersonSchema(), rows);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->tuple(0).value(0), "Ann, A.");
  EXPECT_EQ(back->tuple(1).value(1), "2 \"Oak\"");
}

TEST(RelationTest, FromCsvRejectsBadHeader) {
  auto bad = Relation::FromCsvRows(
      PersonSchema(), {{"name", "addr", "WRONG"}, {"a", "b", "c"}});
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(Relation::FromCsvRows(PersonSchema(), {}).ok());
  EXPECT_FALSE(
      Relation::FromCsvRows(PersonSchema(), {{"name", "addr"}}).ok());
}

// --------------------------------------------------------------- Instance

TEST(InstanceTest, SidesAndPairCount) {
  Relation l(PersonSchema());
  (void)l.Append({"Ann", "1 Elm", "555"});
  (void)l.Append({"Bob", "2 Oak", "777"});
  Relation r(AccountSchema());
  (void)r.Append({"Ann", "1 Elm", "555", "100"});
  Instance d(l, r);
  EXPECT_EQ(d.NumPairs(), 2u);
  EXPECT_EQ(d.left().size(), 2u);
  EXPECT_EQ(d.right().size(), 1u);
  EXPECT_EQ(d.schema_pair().total_attrs(), 7);
}

TEST(InstanceTest, ExtendedByRequiresSameIds) {
  Relation l(PersonSchema());
  (void)l.Append({"Ann", "1 Elm", "555"});
  Relation r(AccountSchema());
  (void)r.Append({"Ann", "1 Elm", "555", "100"});
  Instance d(l, r);

  // An updated version of the same tuples: extends.
  Relation l2(PersonSchema());
  ASSERT_TRUE(l2.AppendTuple(Tuple(0, {"Anne", "1 Elm", "555"})).ok());
  Instance d2(l2, r);
  EXPECT_TRUE(d.ExtendedBy(d2));

  // An instance missing the tuple id: does not extend.
  Relation l3(PersonSchema());
  ASSERT_TRUE(l3.AppendTuple(Tuple(9, {"Zed", "9 Elm", "000"})).ok());
  Instance d3(l3, r);
  EXPECT_FALSE(d.ExtendedBy(d3));
}

TEST(InstanceTest, SelfPairSharesTuples) {
  Relation l(PersonSchema());
  (void)l.Append({"Ann", "1 Elm", "555"});
  Instance d = SelfPair(l);
  EXPECT_EQ(d.left().size(), d.right().size());
  EXPECT_EQ(d.left().tuple(0).id(), d.right().tuple(0).id());
}

}  // namespace
}  // namespace mdmatch
