#include "util/arena.h"

#include <cassert>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define MDMATCH_ARENA_MMAP 1
#endif

namespace mdmatch::util {

namespace {

constexpr size_t kPage = 4096;
/// First allocation-eligible offset in a block: the header, rounded up so
/// user memory starts max-aligned.
constexpr size_t kHeaderSize =
    (sizeof(void*) * 8 + alignof(max_align_t) - 1) &
    ~(alignof(max_align_t) - 1);

size_t RoundUp(size_t value, size_t to) { return (value + to - 1) & ~(to - 1); }

}  // namespace

Arena::Block* Arena::NewBlock(size_t reserve_bytes) {
  const size_t reserved = RoundUp(reserve_bytes + kHeaderSize, kPage);
  char* base = nullptr;
#if MDMATCH_ARENA_MMAP
  // Reserve address space only: PROT_NONE costs no physical pages until
  // CommitTo flips a prefix to read/write.
  void* mapping = ::mmap(nullptr, reserved, PROT_NONE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mapping == MAP_FAILED) throw std::bad_alloc();
  base = static_cast<char*>(mapping);
  // Commit the first page for the header.
  if (::mprotect(base, kPage, PROT_READ | PROT_WRITE) != 0) {
    ::munmap(base, reserved);
    throw std::bad_alloc();
  }
  const size_t committed = kPage;
#else
  // No virtual-memory API: plain malloc of the full span (commit ==
  // reserve). Correctness is identical, only the lazy-commit economy is
  // lost.
  base = static_cast<char*>(std::malloc(reserved));
  if (base == nullptr) throw std::bad_alloc();
  const size_t committed = reserved;
#endif
  static_assert(sizeof(Block) <= kPage && sizeof(Block) <= kHeaderSize);
  // mdmatch-lint: allow(naked-new) placement header into the arena's own
  // mapping; FreeBlock unmaps it (Block is trivially destructible).
  Block* block = new (base) Block{};
  block->base = base;
  block->reserved = reserved;
  block->committed = committed;
  block->used = kHeaderSize;
  return block;
}

void Arena::FreeBlock(Block* block) {
  if (block == nullptr) return;
  char* base = block->base;
#if MDMATCH_ARENA_MMAP
  ::munmap(base, block->reserved);
#else
  std::free(base);
#endif
}

void Arena::CommitTo(Block* block, size_t needed) {
  if (needed <= block->committed) return;
  assert(needed <= block->reserved);
  // Double the committed prefix (so a growing burst costs O(log n)
  // mprotect calls), but never past the reservation.
  size_t target = block->committed < (size_t{64} << 10)
                      ? (size_t{64} << 10)
                      : block->committed * 2;
  while (target < needed) target *= 2;
  target = RoundUp(target, kPage);
  if (target > block->reserved) target = block->reserved;
#if MDMATCH_ARENA_MMAP
  if (::mprotect(block->base + block->committed, target - block->committed,
                 PROT_READ | PROT_WRITE) != 0) {
    throw std::bad_alloc();
  }
#endif
  block->committed = target;
}

Arena::Arena(size_t reserve_bytes) { head_ = NewBlock(reserve_bytes); }

Arena::~Arena() {
  while (head_ != nullptr) {
    Block* prev = head_->prev;
    FreeBlock(head_);
    head_ = prev;
  }
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0 &&
         "alignment must be a power of two");
  assert(alignment <= kPage);
  Block* block = head_;
  const size_t offset = RoundUp(block->used, alignment);
  if (bytes <= block->reserved && offset <= block->reserved - bytes) {
    CommitTo(block, offset + bytes);
    block->used = offset + bytes;
    return block->base + offset;
  }
  // Overflow: chain a bigger block (at least 2x, and big enough for this
  // allocation outright).
  size_t next_reserve = block->reserved * 2;
  if (next_reserve < bytes + kHeaderSize + alignment) {
    next_reserve = bytes + kHeaderSize + alignment;
  }
  Block* grown = NewBlock(next_reserve);
  grown->prev = head_;
  head_ = grown;
  return Allocate(bytes, alignment);
}

void Arena::Reset() {
  // Drop overflow blocks; rewind the primary (bottom of the chain) while
  // keeping its committed pages for reuse.
  while (head_->prev != nullptr) {
    Block* prev = head_->prev;
    FreeBlock(head_);
    head_ = prev;
  }
  head_->used = kHeaderSize;
}

size_t Arena::bytes_used() const {
  size_t total = 0;
  for (const Block* b = head_; b != nullptr; b = b->prev) {
    total += b->used - kHeaderSize;
  }
  return total;
}

size_t Arena::bytes_committed() const {
  size_t total = 0;
  for (const Block* b = head_; b != nullptr; b = b->prev) {
    total += b->committed;
  }
  return total;
}

}  // namespace mdmatch::util
