#ifndef MDMATCH_CORE_MD_PARSER_H_
#define MDMATCH_CORE_MD_PARSER_H_

#include <string_view>

#include "core/md.h"
#include "schema/schema.h"
#include "sim/sim_op.h"
#include "util/status.h"

namespace mdmatch {

/// \brief Parses the textual MD syntax used throughout the examples:
///
///   credit[LN] = billing[LN] /\ credit[FN] ~dl@0.80 billing[FN]
///       -> credit[addr] <=> billing[post]
///
/// Rules:
///   - a conjunct is `R1[attrs] OP R2[attrs]` with OP either `=` or
///     `~opname` (an operator registered in the SimOpRegistry);
///   - `attrs` is one attribute name or a comma-separated list; lists on
///     the two sides of an operator must have equal length and expand
///     pairwise (`credit[FN,LN] <=> billing[FN,LN]` is two RHS pairs);
///   - conjuncts are joined with `/\` (or the word `AND`);
///   - the arrow is `->`, RHS pairs use `<=>`;
///   - relation names must match the schema pair (left schema first).
Result<MatchingDependency> ParseMd(std::string_view text,
                                   const SchemaPair& pair,
                                   const sim::SimOpRegistry& ops);

/// Parses one MD per non-empty line; lines starting with '#' are comments.
Result<MdSet> ParseMdSet(std::string_view text, const SchemaPair& pair,
                         const sim::SimOpRegistry& ops);

}  // namespace mdmatch

#endif  // MDMATCH_CORE_MD_PARSER_H_
