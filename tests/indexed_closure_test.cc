// Equivalence of the indexed MDClosure (the paper's suggested O(n + h³)
// refinement) with the reference Fig. 5 implementation, across random
// workloads and the worked examples.

#include <gtest/gtest.h>

#include "core/closure.h"
#include "core/find_rcks.h"
#include "core/md_generator.h"
#include "datagen/credit_billing.h"
#include "util/random.h"

namespace mdmatch {
namespace {

/// Compares the two closures entry by entry.
void ExpectSameClosure(const SchemaPair& pair, const sim::SimOpRegistry& ops,
                       const MdSet& sigma, const std::vector<Conjunct>& lhs) {
  ClosureMatrix a = ComputeClosure(pair, ops, sigma, lhs);
  ClosureMatrix b = ComputeClosureIndexed(pair, ops, sigma, lhs);
  ASSERT_EQ(a.num_attrs(), b.num_attrs());
  ASSERT_EQ(a.num_ops(), b.num_ops());
  for (int32_t x = 0; x < a.num_attrs(); ++x) {
    for (int32_t y = 0; y < a.num_attrs(); ++y) {
      for (sim::SimOpId op = 0; op < static_cast<sim::SimOpId>(a.num_ops());
           ++op) {
        EXPECT_EQ(a.Get(x, y, op), b.Get(x, y, op))
            << "entry (" << x << ", " << y << ", " << op << ") differs";
      }
    }
  }
}

TEST(IndexedClosureTest, MatchesReferenceOnExample11) {
  sim::SimOpRegistry ops = sim::SimOpRegistry::Default();
  datagen::Example11Data ex = datagen::MakeExample11(&ops);
  auto email = Conjunct{{*ex.pair.left().Find("email"),
                         *ex.pair.right().Find("email")},
                        sim::SimOpRegistry::kEq};
  auto tel = Conjunct{{*ex.pair.left().Find("tel"),
                       *ex.pair.right().Find("phn")},
                      sim::SimOpRegistry::kEq};
  ExpectSameClosure(ex.pair, ops, ex.mds, {email, tel});
  ExpectSameClosure(ex.pair, ops, ex.mds, {email});
  ExpectSameClosure(ex.pair, ops, ex.mds, {});
}

TEST(IndexedClosureTest, MatchesReferenceOnCreditBillingMds) {
  sim::SimOpRegistry ops;
  SchemaPair pair = datagen::MakeCreditBillingSchemas();
  MdSet mds = datagen::MakeCreditBillingMds(pair, &ops);
  ComparableLists target = datagen::MakeCreditBillingTarget(pair);
  for (size_t i = 0; i < target.size(); ++i) {
    ExpectSameClosure(pair, ops, mds,
                      {Conjunct{target.pair_at(i), sim::SimOpRegistry::kEq}});
  }
}

TEST(IndexedClosureTest, EmptyLhsMdsFireUnconditionally) {
  Schema s1("R1", {{"a", "d"}, {"b", "d"}});
  Schema s2("R2", {{"a", "d"}, {"b", "d"}});
  SchemaPair pair(s1, s2);
  sim::SimOpRegistry ops;
  MdSet sigma = {MatchingDependency({}, {{{0, 0}}})};
  ClosureMatrix m = ComputeClosureIndexed(pair, ops, sigma, {});
  EXPECT_TRUE(m.Identified({0, 0}));
  ExpectSameClosure(pair, ops, sigma, {});
}

class IndexedClosureSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexedClosureSweep, MatchesReferenceOnRandomWorkloads) {
  sim::SimOpRegistry ops;
  MdGeneratorOptions gen;
  gen.num_mds = 25;
  gen.y_length = 5;
  gen.extra_attrs = 3;
  gen.seed = GetParam();
  MdWorkload w = GenerateMdWorkload(gen, &ops);

  // Random candidate LHS of growing size.
  Rng rng(GetParam() * 31 + 7);
  std::vector<Conjunct> lhs;
  for (size_t i = 0; i < 1 + rng.Index(5); ++i) {
    AttrId a = static_cast<AttrId>(rng.Index(8));
    AttrId b = static_cast<AttrId>(rng.Index(8));
    sim::SimOpId op = rng.Bernoulli(0.5) ? sim::SimOpRegistry::kEq
                                         : ops.Dl(0.8);
    lhs.push_back(Conjunct{{a, b}, op});
  }
  ExpectSameClosure(w.pair, ops, w.sigma, lhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedClosureSweep,
                         testing::Range(uint64_t{1}, uint64_t{25}));

TEST(IndexedClosureTest, DeducesIndexedAgreesWithDeduces) {
  sim::SimOpRegistry ops;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    MdGeneratorOptions gen;
    gen.num_mds = 20;
    gen.y_length = 4;
    gen.seed = seed;
    MdWorkload w = GenerateMdWorkload(gen, &ops);
    // Compare the deduction verdicts for every single-conjunct candidate.
    for (AttrId a = 0; a < 6; ++a) {
      MatchingDependency phi({Conjunct{{a, a}, sim::SimOpRegistry::kEq}},
                             {{{0, 0}}});
      EXPECT_EQ(Deduces(w.pair, ops, w.sigma, phi),
                DeducesIndexed(w.pair, ops, w.sigma, phi))
          << "seed " << seed << " attr " << a;
    }
  }
}

TEST(IndexedClosureTest, StatsCountFiredMds) {
  Schema s1("R1", {{"a", "d"}, {"b", "d"}, {"c", "d"}});
  Schema s2("R2", {{"a", "d"}, {"b", "d"}, {"c", "d"}});
  SchemaPair pair(s1, s2);
  sim::SimOpRegistry ops;
  constexpr sim::SimOpId kEq = sim::SimOpRegistry::kEq;
  MdSet sigma = {
      MatchingDependency({Conjunct{{0, 0}, kEq}}, {{{1, 1}}}),
      MatchingDependency({Conjunct{{1, 1}, kEq}}, {{{2, 2}}}),
  };
  ClosureStats stats;
  MatchingDependency goal({Conjunct{{0, 0}, kEq}}, {{{2, 2}}});
  EXPECT_TRUE(DeducesIndexed(pair, ops, sigma, goal, &stats));
  EXPECT_EQ(stats.mds_applied, 2u);
}

}  // namespace
}  // namespace mdmatch
