#include "match/pair_cache.h"

#include <algorithm>

#include "util/fnv.h"

namespace mdmatch::match {

uint64_t TupleFingerprint(const Tuple& tuple) {
  uint64_t hash = kFnvOffsetBasis;
  for (const std::string& value : tuple.values()) {
    hash = FnvMixString(hash, value);
    hash = FnvMixByte(hash, 0x1f);  // unit separator: ("ab","c")!=("a","bc")
  }
  return hash;
}

PairDecisionCache::PairDecisionCache(size_t capacity, size_t shards) {
  if (shards == 0) shards = 1;
  shards = std::min(shards, std::max<size_t>(capacity, 1));
  per_shard_capacity_ = std::max<size_t>(1, (capacity + shards - 1) / shards);
  shards_ = std::vector<Shard>(shards);
}

uint64_t PairDecisionCache::HashKey(const Key& key) {
  uint64_t hash = Mix64(static_cast<uint64_t>(key.left_id));
  hash = Mix64(hash ^ static_cast<uint64_t>(key.right_id));
  hash = Mix64(hash ^ key.left_fp);
  return Mix64(hash ^ key.right_fp);
}

std::optional<bool> PairDecisionCache::Lookup(const Key& key) {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.index.find(hash);
  // The index is keyed by the 64-bit hash; entries carry the full key, so
  // a hash collision degrades to a miss, never to a wrong decision.
  if (found == shard.index.end() || !(found->second->key == key)) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
  return found->second->decision;
}

void PairDecisionCache::Insert(const Key& key, bool decision) {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.index.find(hash);
  if (found != shard.index.end()) {
    found->second->key = key;
    found->second->decision = decision;
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    return;
  }
  shard.lru.push_front(Entry{key, decision});
  shard.index[hash] = shard.lru.begin();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(HashKey(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

size_t PairDecisionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

PairDecisionCache::Stats PairDecisionCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

}  // namespace mdmatch::match
