#include "match/evaluation.h"

#include <unordered_map>

namespace mdmatch::match {

size_t CountTruePairs(const Instance& instance) {
  std::unordered_map<EntityId, size_t> left_counts;
  for (const auto& t : instance.left().tuples()) {
    if (t.entity() != kEntityUnknown) ++left_counts[t.entity()];
  }
  size_t total = 0;
  for (const auto& t : instance.right().tuples()) {
    if (t.entity() == kEntityUnknown) continue;
    auto it = left_counts.find(t.entity());
    if (it != left_counts.end()) total += it->second;
  }
  return total;
}

bool IsTruePair(const Instance& instance, uint32_t left_index,
                uint32_t right_index) {
  const Tuple& l = instance.left().tuple(left_index);
  const Tuple& r = instance.right().tuple(right_index);
  return l.entity() != kEntityUnknown && l.entity() == r.entity();
}

MatchQuality Evaluate(const MatchResult& result, const Instance& instance) {
  MatchQuality q;
  q.found = result.size();
  q.truth = CountTruePairs(instance);
  for (const auto& [l, r] : result.pairs()) {
    if (IsTruePair(instance, l, r)) ++q.true_positives;
  }
  q.precision = q.found == 0
                    ? 0.0
                    : static_cast<double>(q.true_positives) /
                          static_cast<double>(q.found);
  q.recall = q.truth == 0 ? 0.0
                          : static_cast<double>(q.true_positives) /
                                static_cast<double>(q.truth);
  q.f1 = (q.precision + q.recall) == 0
             ? 0.0
             : 2 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

CandidateQuality EvaluateCandidates(const CandidateSet& candidates,
                                    const Instance& instance) {
  CandidateQuality q;
  q.candidates = candidates.size();
  q.truth = CountTruePairs(instance);
  for (const auto& [l, r] : candidates.pairs()) {
    if (IsTruePair(instance, l, r)) ++q.true_in_candidates;
  }
  q.pairs_completeness =
      q.truth == 0 ? 0.0
                   : static_cast<double>(q.true_in_candidates) /
                         static_cast<double>(q.truth);
  double total_pairs = static_cast<double>(instance.left().size()) *
                       static_cast<double>(instance.right().size());
  q.reduction_ratio =
      total_pairs == 0
          ? 0.0
          : 1.0 - static_cast<double>(q.candidates) / total_pairs;
  return q;
}

}  // namespace mdmatch::match
