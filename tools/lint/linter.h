#ifndef MDMATCH_TOOLS_LINT_LINTER_H_
#define MDMATCH_TOOLS_LINT_LINTER_H_

// mdmatch_lint: the project-invariant linter.
//
// Enforces the structural invariants the compiler cannot (and the Clang
// thread-safety build only partially can):
//
//   frozen-mutation  Frozen/snapshot types (SessionGeneration,
//                    IndexSnapshot, FrozenUnionFind, the COW treap
//                    Node/Block types) declare no mutable fields and no
//                    non-const member functions — immutability after
//                    publication is a compile-shape property, not a
//                    convention.
//   const-escape     No const_cast / const_pointer_cast outside the
//                    commented allowlist (the uniquely-owned-recycle fast
//                    paths of the persistent indexes).
//   raw-lock         No raw .lock()/.unlock() calls and no direct
//                    std::mutex / std::condition_variable use — locking
//                    goes through util::Mutex + util::MutexLock (RAII,
//                    thread-safety annotated).
//   naked-new        No naked new/delete in src/ (private-constructor
//                    shared_ptr factories are allowlisted).
//   layering         The layer DAG util -> schema -> sim -> core ->
//                    datagen -> match -> candidate -> api -> stream has
//                    no back-edges (the match/ forwarding headers over
//                    relocated candidate/ types are exempt).
//   tsa-escape       NO_THREAD_SAFETY_ANALYSIS carries a justification
//                    comment on the same or a preceding line.
//   hot-loop-alloc   No per-iteration container construction
//                    (std::vector, std::string, maps/sets) inside loop
//                    bodies in src/match/ and src/sim/ — the per-pair
//                    layers hoist scratch or carve from util::Arena.
//                    References, pointers, nested names and statics are
//                    exempt; deliberate cold paths carry an allow marker.
//
// A finding is suppressed by a marker comment on its line or within the
// two lines above it:
//
//   // mdmatch-lint: allow(<check>) <why this site is sound>
//
// Comments, string literals and raw strings are stripped before any
// check runs, so prose and patterns never self-trigger.

#include <string>
#include <vector>

namespace mdmatch::lint {

struct Finding {
  std::string file;
  size_t line = 0;  ///< 1-based
  std::string check;
  std::string message;
};

/// Lints one file. `path` is the repo-relative path the layering and
/// scoping rules key on; `content` is passed separately so tests can
/// lint fixture text under pretend paths.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content);

/// Rank of `path`'s layer in the DAG above, or -1 for paths outside
/// src/ (tools, bench, tests — exempt from the layering check).
int LayerRank(const std::string& path);

/// `content` with comments, string/char literals and raw strings blanked
/// (newlines kept, so line numbers survive). Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

}  // namespace mdmatch::lint

#endif  // MDMATCH_TOOLS_LINT_LINTER_H_
