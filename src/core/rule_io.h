#ifndef MDMATCH_CORE_RULE_IO_H_
#define MDMATCH_CORE_RULE_IO_H_

#include <string>
#include <vector>

#include "core/md.h"
#include "core/rck.h"
#include "schema/schema.h"
#include "sim/sim_op.h"
#include "util/status.h"

namespace mdmatch {

/// \brief Persistence for rule sets in the textual MD syntax of
/// core/md_parser — one MD per line, '#' comments. Deployments keep Σ and
/// the deduced RCKs in version-controlled rule files.

/// Serializes Σ (one MD per line, prefixed by a generated header comment).
std::string SerializeMdSet(const MdSet& sigma, const SchemaPair& pair,
                           const sim::SimOpRegistry& ops);

Status SaveMdSetToFile(const std::string& path, const MdSet& sigma,
                       const SchemaPair& pair, const sim::SimOpRegistry& ops);

/// Loads and parses a rule file; every named operator must already be
/// registered.
Result<MdSet> LoadMdSetFromFile(const std::string& path,
                                const SchemaPair& pair,
                                const sim::SimOpRegistry& ops);

/// RCKs are persisted as the MDs they denote (LHS -> full target lists);
/// loading validates that each rule's RHS is exactly the target and strips
/// it back to a key.
Status SaveRcksToFile(const std::string& path,
                      const std::vector<RelativeKey>& rcks,
                      const ComparableLists& target, const SchemaPair& pair,
                      const sim::SimOpRegistry& ops);

Result<std::vector<RelativeKey>> LoadRcksFromFile(
    const std::string& path, const ComparableLists& target,
    const SchemaPair& pair, const sim::SimOpRegistry& ops);

}  // namespace mdmatch

#endif  // MDMATCH_CORE_RULE_IO_H_
