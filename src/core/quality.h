#ifndef MDMATCH_CORE_QUALITY_H_
#define MDMATCH_CORE_QUALITY_H_

#include <map>

#include "core/md.h"
#include "core/rck.h"
#include "schema/schema.h"

namespace mdmatch {

/// \brief The quality model of Section 5:
///
///   cost(R1[A], R2[B]) = w1·ct + w2·lt + w3/ac
///
/// where ct counts how often the pair already appears in chosen RCKs
/// (diversity pressure), lt is the average value length of the pair (longer
/// values are more error-prone), and ac is the user's confidence in the
/// pair's accuracy. Low cost = high quality. The paper's scalability
/// experiments use w1 = w2 = w3 = 1 and ac ≡ 1; its Example 5.1 uses
/// w1 = 1, w2 = w3 = 0.
class QualityModel {
 public:
  /// Weights default to the paper's experimental setting (1, 1, 1).
  explicit QualityModel(double w1 = 1.0, double w2 = 1.0, double w3 = 1.0)
      : w1_(w1), w2_(w2), w3_(w3) {}

  double w1() const { return w1_; }
  double w2() const { return w2_; }
  double w3() const { return w3_; }

  /// Sets the average value length lt(R1[A], R2[B]). Defaults to 0.
  void SetLength(AttrPair p, double lt) { lt_[p] = lt; }

  /// Sets the accuracy/confidence ac(R1[A], R2[B]) in (0, 1]. Defaults to 1.
  void SetAccuracy(AttrPair p, double ac) { ac_[p] = ac; }

  /// Estimates lt from instance data: mean of |t1[A]| over I1 and |t2[B]|
  /// over I2 for every pair used in Σ or the target lists.
  void EstimateLengthsFromData(const Instance& instance, const MdSet& sigma,
                               const ComparableLists& target);

  /// Increments the diversity counter of a pair (called by findRCKs when an
  /// RCK using the pair is added to Γ).
  void IncrementCount(AttrPair p) { ++ct_[p]; }
  int Count(AttrPair p) const;

  /// Resets all diversity counters to zero (pairing() step of findRCKs).
  void ResetCounts() { ct_.clear(); }

  /// The cost of a pair under the current counters.
  double Cost(AttrPair p) const;

  /// Sum of element costs; used to order candidate removals (minimize) and
  /// MDs (sortMD).
  double KeyCost(const RelativeKey& key) const;
  double LhsCost(const MatchingDependency& md) const;

 private:
  double w1_, w2_, w3_;
  std::map<AttrPair, int> ct_;
  std::map<AttrPair, double> lt_;
  std::map<AttrPair, double> ac_;
};

}  // namespace mdmatch

#endif  // MDMATCH_CORE_QUALITY_H_
