#include "core/md.h"

namespace mdmatch {

Status MatchingDependency::Validate(const SchemaPair& pair) const {
  if (rhs_.empty()) {
    return Status::InvalidArgument("MD has an empty RHS");
  }
  auto check_pair = [&](AttrPair p, const char* where) -> Status {
    if (!pair.left().IsValid(p.left) || !pair.right().IsValid(p.right)) {
      return Status::InvalidArgument(std::string(where) +
                                     " attribute id out of range");
    }
    const auto& da = pair.left().attribute(p.left).domain;
    const auto& db = pair.right().attribute(p.right).domain;
    if (da != db) {
      return Status::InvalidArgument(
          std::string(where) + " pair (" +
          pair.left().attribute(p.left).name + ", " +
          pair.right().attribute(p.right).name + ") not domain-comparable");
    }
    return Status::OK();
  };
  for (const auto& c : lhs_) {
    MDMATCH_RETURN_NOT_OK(check_pair(c.attrs, "LHS"));
    if (c.op < 0) return Status::InvalidArgument("negative operator id");
  }
  for (const auto& p : rhs_) {
    MDMATCH_RETURN_NOT_OK(check_pair(p, "RHS"));
  }
  return Status::OK();
}

std::vector<MatchingDependency> MatchingDependency::Normalize() const {
  std::vector<MatchingDependency> out;
  out.reserve(rhs_.size());
  for (const auto& p : rhs_) {
    out.emplace_back(lhs_, std::vector<AttrPair>{p});
  }
  return out;
}

std::string MatchingDependency::ToString(const SchemaPair& pair,
                                         const sim::SimOpRegistry& ops) const {
  std::string out;
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += " /\\ ";
    const auto& c = lhs_[i];
    out += pair.left().name() + "[" +
           pair.left().attribute(c.attrs.left).name + "] ";
    if (c.op == sim::SimOpRegistry::kEq) {
      out += "=";
    } else {
      out += "~" + ops.Name(c.op);
    }
    out += " " + pair.right().name() + "[" +
           pair.right().attribute(c.attrs.right).name + "]";
  }
  out += " -> ";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i > 0) out += " /\\ ";
    out += pair.left().name() + "[" +
           pair.left().attribute(rhs_[i].left).name + "] <=> " +
           pair.right().name() + "[" +
           pair.right().attribute(rhs_[i].right).name + "]";
  }
  return out;
}

MdSet NormalizeSet(const MdSet& sigma) {
  MdSet out;
  for (const auto& md : sigma) {
    auto split = md.Normalize();
    out.insert(out.end(), split.begin(), split.end());
  }
  return out;
}

Status ValidateSet(const SchemaPair& pair, const MdSet& sigma) {
  for (const auto& md : sigma) {
    MDMATCH_RETURN_NOT_OK(md.Validate(pair));
  }
  return Status::OK();
}

size_t SetSize(const MdSet& sigma) {
  size_t n = 0;
  for (const auto& md : sigma) n += md.lhs().size() + md.rhs().size();
  return n;
}

MdBuilder& MdBuilder::Lhs(const std::string& left_attr, const std::string& op,
                          const std::string& right_attr) {
  auto l = pair_.left().Find(left_attr);
  auto r = pair_.right().Find(right_attr);
  auto o = ops_->Find(op);
  if (!l.ok() && first_error_.ok()) first_error_ = l.status();
  if (!r.ok() && first_error_.ok()) first_error_ = r.status();
  if (!o.ok() && first_error_.ok()) first_error_ = o.status();
  if (l.ok() && r.ok() && o.ok()) {
    lhs_.push_back(Conjunct{{*l, *r}, *o});
  }
  return *this;
}

MdBuilder& MdBuilder::Rhs(const std::string& left_attr,
                          const std::string& right_attr) {
  auto l = pair_.left().Find(left_attr);
  auto r = pair_.right().Find(right_attr);
  if (!l.ok() && first_error_.ok()) first_error_ = l.status();
  if (!r.ok() && first_error_.ok()) first_error_ = r.status();
  if (l.ok() && r.ok()) rhs_.push_back(AttrPair{*l, *r});
  return *this;
}

Result<MatchingDependency> MdBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  MatchingDependency md(std::move(lhs_), std::move(rhs_));
  MDMATCH_RETURN_NOT_OK(md.Validate(pair_));
  return md;
}

bool MatchesLhs(const MatchingDependency& md, const sim::SimOpRegistry& ops,
                const Tuple& t1, const Tuple& t2) {
  for (const auto& c : md.lhs()) {
    if (!ops.Eval(c.op, t1.value(c.attrs.left), t2.value(c.attrs.right))) {
      return false;
    }
  }
  return true;
}

}  // namespace mdmatch
