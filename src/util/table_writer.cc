#include "util/table_writer.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace mdmatch {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "| " << row[i] << std::string(widths[i] - row[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(header_);
  for (size_t i = 0; i < header_.size(); ++i) {
    os << "|" << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TableWriter::ToString() const {
  std::ostringstream ss;
  Print(ss);
  return ss.str();
}

}  // namespace mdmatch
