#ifndef MDMATCH_STREAM_DELTA_H_
#define MDMATCH_STREAM_DELTA_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "api/session.h"
#include "schema/tuple.h"
#include "util/status.h"

namespace mdmatch::stream {

/// One match pair named by record ids — the *stable* addressing for
/// streamed events. Positions renumber when a flush removes records and
/// seqs are internal; TupleIds are the identity records keep for life
/// (and the identity an upstream producer re-uses on update), so a
/// subscriber can correlate events across any number of generations.
struct IdPair {
  TupleId left = 0;   ///< side-0 (left relation) record id
  TupleId right = 0;  ///< side-1 (right relation) record id
  auto operator<=>(const IdPair&) const = default;
};

/// \brief Previously-distinct entity clusters fused into one by a
/// generation transition.
///
/// Lists one member record per cluster that existed separately in the
/// `from` generation and is part of a single cluster in the `to`
/// generation — at least two members, each identifying its old cluster by
/// a record that belonged to it (singleton clusters count: the first
/// match between two standing unmatched records is a merge of their
/// singleton clusters). Records new in `to` never name a merged cluster;
/// they only provide the connectivity.
struct ClusterMergeEvent {
  /// (side, id) per previously-distinct cluster, sorted ascending.
  std::vector<std::pair<int, TupleId>> members;
  bool operator==(const ClusterMergeEvent&) const = default;
};

/// \brief The match-state changes between two published generations of
/// one MatchSession, in the stable id-based encoding.
///
/// Apply order within one delta: `retired` first, then `added` (a record
/// update can retire a pair and re-add the same id pair when the new
/// values still match — after the same-flush netting in the session this
/// only survives across multi-generation diffs). `merges` is derived
/// information: it follows from `added` plus the previous cluster state
/// and is not needed to reconstruct the pair set.
///
/// Pairs are in *raw* (pre-closure) match space: for transitive-closure
/// plans a subscriber owns the closure, which is exactly what the
/// cluster-merge events support.
struct MatchDelta {
  uint64_t from_generation = 0;
  uint64_t to_generation = 0;
  /// True for a resync snapshot instead of an incremental diff: the
  /// subscriber fell behind (its delivery queue overflowed) or asked for
  /// an initial snapshot, so `added` lists the *entire* standing match
  /// state of to_generation, `retired` and `merges` are empty, and
  /// from_generation is 0. Apply by clearing local state first.
  bool resync = false;
  std::vector<IdPair> added;    ///< sorted ascending
  std::vector<IdPair> retired;  ///< sorted ascending
  /// Cluster merges, ordered by their smallest member.
  std::vector<ClusterMergeEvent> merges;
};

/// \brief Diffs two published generations of one session,
/// `from.generation <= to.generation`.
///
/// For consecutive generations (to's parent is from) this reads the
/// parent-delta the session recorded at publish time — O(changes), no
/// scan of the standing pair sets. Across a gap it falls back to hashed
/// membership tests over the two raw PairSets — O(|from| + |to|) — and
/// produces the same canonical encoding (sorted id pairs, net of
/// retire/re-add churn), so callers cannot tell which path ran.
///
/// Cluster merges are exact for any gap: a surviving pair never connects
/// two from-clusters (its endpoints already shared one), so the merges
/// of from→to are the components of the added pairs over the frozen
/// from-generation cluster handles.
MatchDelta GenerationDiff(const api::SessionGeneration& from,
                          const api::SessionGeneration& to);

/// The resync form of a generation: its entire standing match state as
/// one delta with `resync` set (see MatchDelta::resync).
MatchDelta FullStateDelta(const api::SessionGeneration& gen);

/// \brief A subscriber-side replica of a session's match state, built
/// purely from delivered deltas.
///
/// Strict: Apply rejects a delta that does not extend the replica's
/// generation (a gap), retires a pair the replica does not hold, or adds
/// one it already holds — so a property test that drives a replica from
/// a delta stream proves the stream is gap-free, ordered, and exact.
class DeltaReplica {
 public:
  /// Applies one delta (resyncs clear first). On error the replica is
  /// unchanged except that a failed non-resync apply leaves pairs
  /// partially applied — treat any non-OK status as fatal.
  Status Apply(const MatchDelta& delta);

  uint64_t generation() const { return generation_; }
  size_t resyncs() const { return resyncs_; }
  const std::set<IdPair>& pairs() const { return pairs_; }

 private:
  uint64_t generation_ = 0;
  size_t resyncs_ = 0;
  std::set<IdPair> pairs_;
};

}  // namespace mdmatch::stream

#endif  // MDMATCH_STREAM_DELTA_H_
