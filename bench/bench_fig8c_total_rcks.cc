// Figure 8(c): the total number of RCKs deduced from small MD sets
// (card(Σ) = 10..40), run to completeness (Proposition 5.1).
// The paper's point: even few MDs yield enough RCKs to direct matching.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/md_generator.h"

using namespace mdmatch;

int main() {
  std::printf("== Figure 8(c): total number of RCKs vs card(Sigma) ==\n");
  TableWriter table(
      {"card(Sigma)", "|Y|=6", "|Y|=8", "|Y|=10", "|Y|=12"});
  for (size_t card = 10; card <= 40; card += 10) {
    std::vector<std::string> row = {std::to_string(card)};
    for (size_t y : bench::YLengths()) {
      // Averaged over seeds. The generator keeps the conjunct universe
      // small (mostly position-aligned pairs, short LHS) so the complete
      // RCK set stays in the paper's 5-50 band; a cap of 200 guards
      // against pathological seeds (reported with a "+").
      size_t total = 0;
      bool capped = false;
      const size_t kSeeds = 5;
      for (size_t s = 0; s < kSeeds; ++s) {
        sim::SimOpRegistry ops;
        MdGeneratorOptions gen;
        gen.num_mds = card;
        gen.y_length = y;
        gen.max_lhs = 3;
        gen.aligned_prob = 0.9;
        gen.rhs_in_target_prob = 0.2;
        gen.eq_prob = 1.0;
        gen.seed = 7 + card * 31 + y + s * 1001;
        MdWorkload w = GenerateMdWorkload(gen, &ops);

        QualityModel quality;
        FindRcksOptions options;
        options.m = 200;
        FindRcksResult result =
            FindRcks(w.pair, ops, w.sigma, w.target, options, &quality);
        total += result.rcks.size();
        capped |= !result.complete;
      }
      row.push_back(std::to_string(total / kSeeds) + (capped ? "+" : ""));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: 5-50 RCKs from 10-40 MDs, more for larger Sigma and "
      "longer Y.\n");
  return 0;
}
