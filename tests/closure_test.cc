// Tests for algorithm MDClosure and the deduction relation Σ ⊨m φ
// (paper Sections 3-4): the worked examples, the inference lemmas, and
// structural properties of the closure.

#include "core/closure.h"

#include <gtest/gtest.h>

#include "core/md_parser.h"
#include "datagen/credit_billing.h"

namespace mdmatch {
namespace {

// (R, R) self pair for the single-relation examples (Example 2.3 / 3.1).
SchemaPair AbcPair() {
  Schema r("R", {{"A", "d"}, {"B", "d"}, {"C", "d"}});
  return SchemaPair(r, r);
}

class ClosureExampleTest : public testing::Test {
 protected:
  void SetUp() override {
    ops_ = sim::SimOpRegistry::Default();
    ex_ = datagen::MakeExample11(&ops_);
  }

  // Builds the MD "lhs -> target identified" for a key candidate.
  MatchingDependency KeyMd(std::vector<Conjunct> lhs) {
    std::vector<AttrPair> rhs;
    for (size_t i = 0; i < ex_.target.size(); ++i) {
      rhs.push_back(ex_.target.pair_at(i));
    }
    return MatchingDependency(std::move(lhs), std::move(rhs));
  }

  Conjunct C(const char* l, const char* op, const char* r) {
    auto li = ex_.pair.left().Find(l);
    auto ri = ex_.pair.right().Find(r);
    auto oi = ops_.Find(op);
    EXPECT_TRUE(li.ok() && ri.ok() && oi.ok());
    return Conjunct{{*li, *ri}, *oi};
  }

  sim::SimOpRegistry ops_;
  datagen::Example11Data ex_;
};

// ------------------------------------------------- paper worked examples

TEST_F(ClosureExampleTest, Example35DeducesRck4) {
  // Σc ⊨m rck4 where rck4 = ([email, tel], [email, phn] || [=, =]).
  auto rck4 = KeyMd({C("email", "=", "email"), C("tel", "=", "phn")});
  EXPECT_TRUE(Deduces(ex_.pair, ops_, ex_.mds, rck4));
}

TEST_F(ClosureExampleTest, Example35DeducesRck1To3) {
  auto rck1 = KeyMd({C("LN", "=", "LN"), C("addr", "=", "post"),
                     C("FN", "dl@0.80", "FN")});
  auto rck2 = KeyMd({C("LN", "=", "LN"), C("tel", "=", "phn"),
                     C("FN", "dl@0.80", "FN")});
  auto rck3 = KeyMd({C("email", "=", "email"), C("addr", "=", "post")});
  EXPECT_TRUE(Deduces(ex_.pair, ops_, ex_.mds, rck1));
  EXPECT_TRUE(Deduces(ex_.pair, ops_, ex_.mds, rck2));
  EXPECT_TRUE(Deduces(ex_.pair, ops_, ex_.mds, rck3));
}

TEST_F(ClosureExampleTest, Example41ClosureTrace) {
  // The table of Example 4.1: seeding M with LHS(rck4) must identify
  // addr/post, FN/FN, LN/LN and finally all of (Yc, Yb).
  ClosureMatrix m = ComputeClosure(
      ex_.pair, ops_, ex_.mds,
      {C("email", "=", "email"), C("tel", "=", "phn")});

  auto qa = [&](int rel, const char* name) {
    const Schema& s = ex_.pair.side(rel);
    return QualifiedAttr{rel, *s.Find(name)};
  };
  // Seeds.
  EXPECT_TRUE(m.Holds(qa(0, "email"), qa(1, "email"), sim::SimOpRegistry::kEq));
  EXPECT_TRUE(m.Holds(qa(0, "tel"), qa(1, "phn"), sim::SimOpRegistry::kEq));
  // ϕ2 fires: addr <=> post.
  EXPECT_TRUE(m.Holds(qa(0, "addr"), qa(1, "post"), sim::SimOpRegistry::kEq));
  // ϕ3 fires: FN, LN.
  EXPECT_TRUE(m.Holds(qa(0, "FN"), qa(1, "FN"), sim::SimOpRegistry::kEq));
  EXPECT_TRUE(m.Holds(qa(0, "LN"), qa(1, "LN"), sim::SimOpRegistry::kEq));
  // ϕ1 fires: the full target, including gender.
  EXPECT_TRUE(
      m.Holds(qa(0, "gender"), qa(1, "gender"), sim::SimOpRegistry::kEq));
  // Entries are symmetric.
  EXPECT_TRUE(m.Holds(qa(1, "post"), qa(0, "addr"), sim::SimOpRegistry::kEq));
  // Nothing relates c# to anything.
  EXPECT_FALSE(m.Holds(qa(0, "c#"), qa(1, "c#"), sim::SimOpRegistry::kEq));
}

TEST_F(ClosureExampleTest, SingletonLhsDeducesNothingExtra) {
  // email alone does not identify the target (it is not a key by itself):
  auto weak = KeyMd({C("email", "=", "email")});
  EXPECT_FALSE(Deduces(ex_.pair, ops_, ex_.mds, weak));
  // and neither does tel alone.
  auto weak2 = KeyMd({C("tel", "=", "phn")});
  EXPECT_FALSE(Deduces(ex_.pair, ops_, ex_.mds, weak2));
}

TEST_F(ClosureExampleTest, SimilarityConjunctDoesNotIdentify) {
  // LHS pairs joined by a similarity operator are similar, not identified:
  // a key of FN ~dl FN alone cannot identify FN.
  ClosureMatrix m =
      ComputeClosure(ex_.pair, ops_, {}, {C("FN", "dl@0.80", "FN")});
  auto fn_c = QualifiedAttr{0, *ex_.pair.left().Find("FN")};
  auto fn_b = QualifiedAttr{1, *ex_.pair.right().Find("FN")};
  EXPECT_TRUE(m.Holds(fn_c, fn_b, *ops_.Find("dl@0.80")));
  EXPECT_FALSE(m.Holds(fn_c, fn_b, sim::SimOpRegistry::kEq));
}

// ----------------------------------------- Example 3.1: dynamic semantics

TEST(ClosureAbcTest, Example31TransitivityHoldsUnderDeduction) {
  // Σ0 = {ψ1: A=A -> B<=>B, ψ2: B=B -> C<=>C}; ψ3: A=A -> C<=>C.
  // Traditional implication fails (Example 3.1) but Σ0 ⊨m ψ3 (Lemma 3.3).
  SchemaPair pair = AbcPair();
  sim::SimOpRegistry ops;
  auto parse = [&](const char* text) {
    auto md = ParseMd(text, pair, ops);
    EXPECT_TRUE(md.ok()) << md.status();
    return *md;
  };
  MdSet sigma0 = {parse("R[A] = R[A] -> R[B] <=> R[B]"),
                  parse("R[B] = R[B] -> R[C] <=> R[C]")};
  auto psi3 = parse("R[A] = R[A] -> R[C] <=> R[C]");
  EXPECT_TRUE(Deduces(pair, ops, sigma0, psi3));
}

TEST(ClosureAbcTest, NoDeductionWithoutChain) {
  SchemaPair pair = AbcPair();
  sim::SimOpRegistry ops;
  auto parse = [&](const char* text) { return *ParseMd(text, pair, ops); };
  MdSet sigma = {parse("R[A] = R[A] -> R[B] <=> R[B]")};
  EXPECT_FALSE(Deduces(pair, ops, sigma, parse("R[A] = R[A] -> R[C] <=> R[C]")));
  EXPECT_FALSE(Deduces(pair, ops, sigma, parse("R[C] = R[C] -> R[B] <=> R[B]")));
}

// ------------------------------------------------------ inference lemmas

class LemmaTest : public testing::Test {
 protected:
  void SetUp() override {
    Schema r1("R1", {{"A", "d"}, {"B", "d"}, {"C", "d"}, {"D", "d"},
                     {"E", "d"}});
    Schema r2("R2", {{"A", "d"}, {"B", "d"}, {"C", "d"}, {"D", "d"},
                     {"E", "d"}});
    pair_ = SchemaPair(std::move(r1), std::move(r2));
    dl_ = ops_.Dl(0.8);
  }

  Conjunct C(AttrId l, sim::SimOpId op, AttrId r) { return {{l, r}, op}; }

  SchemaPair pair_;
  sim::SimOpRegistry ops_;
  sim::SimOpId dl_;
  static constexpr AttrId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;
  static constexpr sim::SimOpId kEq = sim::SimOpRegistry::kEq;
};

TEST_F(LemmaTest, Lemma31AugmentationWithSimilarity) {
  // From ϕ: A=A -> B<=>B deduce (A=A ∧ C~C) -> B<=>B.
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  MatchingDependency augmented({C(kA, kEq, kA), C(kC, dl_, kC)}, {{kB, kB}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, augmented));
}

TEST_F(LemmaTest, Lemma31AugmentationWithEqualityExtendsRhs) {
  // From ϕ: A=A -> B<=>B deduce (A=A ∧ C=C) -> (B<=>B ∧ C<=>C).
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  MatchingDependency augmented({C(kA, kEq, kA), C(kC, kEq, kC)},
                               {{kB, kB}, {kC, kC}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, augmented));
}

TEST_F(LemmaTest, Lemma32StrengtheningSimilarityToEquality) {
  // From (L ∧ A~B) -> Z deduce (L ∧ A=B) -> Z (equality subsumes ≈).
  MdSet sigma = {
      MatchingDependency({C(kA, kEq, kA), C(kB, dl_, kB)}, {{kC, kC}})};
  MatchingDependency strengthened({C(kA, kEq, kA), C(kB, kEq, kB)},
                                  {{kC, kC}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, strengthened));
}

TEST_F(LemmaTest, WeakeningEqualityToSimilarityFails) {
  // The converse of Lemma 3.2(2) must NOT hold: an MD requiring equality
  // cannot be deduced from a similarity-only LHS.
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kC, kC}})};
  MatchingDependency weakened({C(kA, dl_, kA)}, {{kC, kC}});
  EXPECT_FALSE(Deduces(pair_, ops_, sigma, weakened));
}

TEST_F(LemmaTest, Lemma33Transitivity) {
  // ϕ1: X -> W, ϕ2: W -> Z  ⊢  ϕ3: X -> Z, with similarity on the chain.
  MdSet sigma = {
      MatchingDependency({C(kA, dl_, kA)}, {{kB, kB}, {kC, kC}}),
      MatchingDependency({C(kB, kEq, kB), C(kC, kEq, kC)}, {{kD, kD}}),
  };
  MatchingDependency phi3({C(kA, dl_, kA)}, {{kD, kD}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, phi3));
}

TEST_F(LemmaTest, Lemma34Part1MatchingInteractsWithEquality) {
  // ϕ: L -> R1[A1,A2] <=> R2[B,B]: enforcing makes t[A1] = t[A2] (a
  // same-relation consequence), and with ϕ': L -> R1[A1] <=> R2[C] also
  // t[A2] = t'[C].
  MdSet sigma = {
      MatchingDependency({C(kE, kEq, kE)}, {{kA, kB}, {kC, kB}}),  // A1=A,A2=C
      MatchingDependency({C(kE, kEq, kE)}, {{kA, kD}}),            // ϕ'
  };
  ClosureMatrix m =
      ComputeClosure(pair_, ops_, sigma, {C(kE, kEq, kE)});
  // Same-relation: R1[A] = R1[C] (both matched R2[B]).
  EXPECT_TRUE(m.Holds(QualifiedAttr{0, kA}, QualifiedAttr{0, kC}, kEq));
  // Cross consequence: R1[C] = R2[D] via R1[A].
  EXPECT_TRUE(m.Holds(QualifiedAttr{0, kC}, QualifiedAttr{1, kD}, kEq));
}

TEST_F(LemmaTest, Lemma34Part2MatchingInteractsWithSimilarity) {
  // ϕ: (L ∧ R1[A1] ~ R2[B]) -> R1[A2] <=> R2[B]: then t[A2] ~ t[A1].
  MdSet sigma = {MatchingDependency({C(kE, kEq, kE), C(kA, dl_, kB)},
                                    {{kC, kB}})};  // A1=A, A2=C, B=B
  ClosureMatrix m = ComputeClosure(pair_, ops_, sigma,
                                   {C(kE, kEq, kE), C(kA, dl_, kB)});
  // Same-relation similarity: R1[C] ~ R1[A].
  EXPECT_TRUE(m.Holds(QualifiedAttr{0, kC}, QualifiedAttr{0, kA}, dl_));
  // But not equality.
  EXPECT_FALSE(m.Holds(QualifiedAttr{0, kC}, QualifiedAttr{0, kA}, kEq));
}

TEST_F(LemmaTest, LhsFiresThroughEqualitySubsumption) {
  // An MD whose conjunct requires A ~dl A fires when A = A is deduced.
  MdSet sigma = {
      MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}}),
      MatchingDependency({C(kB, dl_, kB)}, {{kC, kC}}),  // needs B ~ B
  };
  MatchingDependency goal({C(kA, kEq, kA)}, {{kC, kC}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, goal));
}

TEST_F(LemmaTest, SimilaritySeedFiresSameOperatorConjunct) {
  // A ~dl A in the candidate LHS fires an MD with the identical conjunct.
  MdSet sigma = {MatchingDependency({C(kA, dl_, kA)}, {{kB, kB}})};
  MatchingDependency goal({C(kA, dl_, kA)}, {{kB, kB}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, goal));
}

TEST_F(LemmaTest, SimilaritySeedDoesNotFireDifferentOperator) {
  // A ~jaro A does not satisfy a conjunct requiring A ~dl A (operators are
  // uninterpreted; only = subsumes).
  sim::SimOpId jaro = ops_.Jaro(0.9);
  MdSet sigma = {MatchingDependency({C(kA, dl_, kA)}, {{kB, kB}})};
  MatchingDependency goal({C(kA, jaro, kA)}, {{kB, kB}});
  EXPECT_FALSE(Deduces(pair_, ops_, sigma, goal));
}

// --------------------------------------------------- structural properties

TEST_F(LemmaTest, ReflexivityOfDeduction) {
  // Σ ⊨m φ for every φ ∈ Σ (with equality LHS ops this is immediate).
  MdSet sigma = {
      MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}}),
      MatchingDependency({C(kB, dl_, kC)}, {{kD, kD}, {kE, kE}}),
  };
  for (const auto& md : sigma) {
    EXPECT_TRUE(Deduces(pair_, ops_, sigma, md));
  }
}

TEST_F(LemmaTest, MonotonicityInSigma) {
  MdSet small = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  MdSet big = small;
  big.push_back(MatchingDependency({C(kB, kEq, kB)}, {{kC, kC}}));

  MatchingDependency goal({C(kA, kEq, kA)}, {{kB, kB}});
  EXPECT_TRUE(Deduces(pair_, ops_, small, goal));
  EXPECT_TRUE(Deduces(pair_, ops_, big, goal));

  MatchingDependency chain({C(kA, kEq, kA)}, {{kC, kC}});
  EXPECT_FALSE(Deduces(pair_, ops_, small, chain));
  EXPECT_TRUE(Deduces(pair_, ops_, big, chain));
}

TEST_F(LemmaTest, MonotonicityInLhs) {
  // Augmenting the candidate LHS never loses deductions.
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  MatchingDependency base({C(kA, kEq, kA)}, {{kB, kB}});
  MatchingDependency wider({C(kA, kEq, kA), C(kD, dl_, kE)}, {{kB, kB}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, base));
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, wider));
}

TEST_F(LemmaTest, MultiRhsRequiresAllPairsIdentified) {
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  MatchingDependency both({C(kA, kEq, kA)}, {{kB, kB}, {kC, kC}});
  EXPECT_FALSE(Deduces(pair_, ops_, sigma, both));
}

TEST_F(LemmaTest, EmptySigmaOnlySelfDeductions) {
  // With Σ empty, only the seeds themselves hold: equality seeds identify
  // their own pair, nothing else.
  MatchingDependency self({C(kA, kEq, kA)}, {{kA, kA}});
  EXPECT_TRUE(Deduces(pair_, ops_, {}, self));
  MatchingDependency other({C(kA, kEq, kA)}, {{kB, kB}});
  EXPECT_FALSE(Deduces(pair_, ops_, {}, other));
}

TEST_F(LemmaTest, StatsAndPopCountBounds) {
  MdSet sigma = {
      MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}}),
      MatchingDependency({C(kB, kEq, kB)}, {{kC, kC}}),
      MatchingDependency({C(kC, kEq, kC)}, {{kD, kD}}),
  };
  ClosureStats stats;
  MatchingDependency goal({C(kA, kEq, kA)}, {{kD, kD}});
  EXPECT_TRUE(Deduces(pair_, ops_, sigma, goal, &stats));
  EXPECT_EQ(stats.mds_applied, 3u);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_GT(stats.entries_set, 0u);

  ClosureMatrix m = ComputeClosure(pair_, ops_, sigma, goal.lhs());
  size_t h = static_cast<size_t>(pair_.total_attrs());
  EXPECT_LE(m.PopCount(), h * h * ops_.size());
}

TEST_F(LemmaTest, HoldsOrEqCombinesEntries) {
  MdSet sigma = {MatchingDependency({C(kA, kEq, kA)}, {{kB, kB}})};
  ClosureMatrix m = ComputeClosure(pair_, ops_, sigma, {C(kA, kEq, kA)});
  QualifiedAttr b1{0, kB}, b2{1, kB};
  // B pair identified => HoldsOrEq is true for any operator.
  EXPECT_TRUE(m.HoldsOrEq(b1, b2, dl_));
  EXPECT_FALSE(m.Holds(b1, b2, dl_));
}

}  // namespace
}  // namespace mdmatch
