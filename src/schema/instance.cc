#include "schema/instance.h"

#include <unordered_set>

namespace mdmatch {

bool Instance::ExtendedBy(const Instance& other) const {
  for (int s = 0; s < 2; ++s) {
    std::unordered_set<TupleId> ids;
    ids.reserve(other.side(s).size());
    for (const auto& t : other.side(s).tuples()) ids.insert(t.id());
    for (const auto& t : side(s).tuples()) {
      if (!ids.count(t.id())) return false;
    }
  }
  return true;
}

Instance SelfPair(const Relation& relation) {
  return Instance(relation, relation);
}

}  // namespace mdmatch
