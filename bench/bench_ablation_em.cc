// Ablation: EM training budget of the Fellegi-Sunter matcher (the paper
// trains on "a sample of at most 30k"). Sweeps the pair-sample size and
// toggles the restart heuristic; reports FSrck match quality.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "match/evaluation.h"
#include "match/fellegi_sunter.h"
#include "match/hs_rules.h"
#include "match/windowing.h"

using namespace mdmatch;
using namespace mdmatch::match;

int main() {
  sim::SimOpRegistry ops;
  datagen::CreditBillingOptions gen;
  gen.num_base = bench::FullRun() ? 20000 : 10000;
  gen.seed = 6300;
  datagen::CreditBillingData data = datagen::GenerateCreditBilling(gen, &ops);

  auto deduction = bench::DeduceRcks(data, &ops);
  ComparisonVector vector = RelaxVectorForMatching(
      ComparisonVector::UnionOfKeys(deduction.rcks, 5), ops.Dl(0.8));
  CandidateSet candidates = WindowCandidatesMultiPass(
      data.instance, StandardWindowKeys(data.pair), 10);

  std::printf("== Ablation: EM sample size and restarts (K = %zu) ==\n",
              gen.num_base);
  TableWriter table({"sample", "restarts", "precision", "recall",
                     "EM iters", "p-hat"});
  for (size_t sample : {1000, 5000, 30000}) {
    for (size_t restarts : {size_t{1}, size_t{3}}) {
      FsOptions options;
      options.max_training_pairs = sample;
      options.em_restarts = restarts;
      FellegiSunter fs(vector, options);
      if (auto st = fs.Train(data.instance, ops); !st.ok()) {
        std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
        return 1;
      }
      MatchQuality q =
          Evaluate(fs.Match(data.instance, ops, candidates), data.instance);
      table.AddRow({std::to_string(sample), std::to_string(restarts),
                    TableWriter::Num(100 * q.precision, 1),
                    TableWriter::Num(100 * q.recall, 1),
                    std::to_string(fs.model().iterations_run),
                    TableWriter::Num(fs.model().p, 3)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: quality saturates well below the 30k budget on this "
      "workload; restarts guard the small-sample regime against local "
      "optima.\n");
  return 0;
}
