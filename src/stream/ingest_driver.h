#ifndef MDMATCH_STREAM_INGEST_DRIVER_H_
#define MDMATCH_STREAM_INGEST_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "schema/tuple.h"
#include "stream/delta.h"
#include "stream/sink.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mdmatch::stream {

/// Runtime knobs of an IngestDriver.
struct IngestDriverOptions {
  /// Bound of the staging queue, in operations. Producers hitting the
  /// bound block or are rejected per `backpressure`.
  size_t queue_capacity = 4096;
  /// What a producer gets when the staging queue is full: kBlock parks it
  /// until the flusher frees space, kReject returns kQueueFull
  /// immediately (retryable — the queue drains as flushes complete).
  enum class Backpressure { kBlock, kReject };
  Backpressure backpressure = Backpressure::kBlock;
  /// Default per-subscription delivery-queue bound, in deltas
  /// (overridable per subscription; see SubscribeOptions).
  size_t subscriber_queue_capacity = 256;
};

/// Aggregate counters of an IngestDriver since construction.
struct IngestStats {
  size_t ops_enqueued = 0;   ///< accepted Upsert/Remove calls
  size_t ops_flushed = 0;    ///< ops drained into completed flushes
  size_t ops_rejected = 0;   ///< kReject backpressure refusals
  size_t ops_ignored = 0;    ///< removes of ids unknown at flush time
  size_t flushes = 0;        ///< flush cycles run (incl. no-op ones)
  size_t queue_depth = 0;    ///< staged ops waiting right now
  size_t coalesced_deltas = 0;  ///< ops collapsed per (side, id), total
  size_t deltas_delivered = 0;  ///< deltas enqueued to subscriptions
  size_t resyncs = 0;           ///< slow-subscriber overflow resyncs
  uint64_t generation = 0;      ///< current published generation
};

/// \brief A background ingestion front-end that owns a MatchSession:
/// producers stage records into a bounded queue, one flusher thread
/// drains and flushes, and subscribers receive every published
/// generation's match delta in order.
///
/// Where MatchSession::Flush is a synchronous call the producer pays for,
/// the driver decouples the two rates: Upsert/Remove cost one bounded
/// queue push (blocking or rejecting at capacity, see
/// IngestDriverOptions::backpressure), and the flusher coalesces
/// everything staged since the previous flush into one Flush call — a
/// burst of updates to one record collapses to its last value
/// (IngestReport::coalesced_deltas), and flush cost is paid per *cycle*,
/// not per record. Queries stay what they were: View()/session() answer
/// lock-free from the latest published generation regardless of what the
/// flusher is doing.
///
/// Subscriptions: Subscribe attaches a MatchDeltaSink; after every flush
/// that publishes a generation the flusher computes one GenerationDiff
/// and fans it out to each subscription's bounded queue, from which a
/// dedicated delivery thread runs the sink. Delivery is gap-free and in
/// generation order per subscription: either consecutive diffs chain
/// from == last-delivered to, or — when a slow sink overflowed its queue
/// — a single resync snapshot replaces the backlog (MatchDelta::resync).
/// An empty flush cycle (nothing staged, or only ignorable removes)
/// publishes nothing and wakes no subscriber.
///
/// Shutdown: Stop() (also the destructor) drains the remaining queue
/// through one final flush, stops the flusher, delivers every delta
/// still queued to subscribers, then joins their delivery threads — so
/// after Stop returns, every subscriber saw the final generation and no
/// sink runs again. Drain() is the weaker barrier: it blocks until every
/// op enqueued before the call is flushed, and returns that flush's
/// report.
///
/// Thread safety: every public method is safe from any thread, including
/// concurrent producers. Remove is asynchronous and therefore cannot
/// report NotFound for ids absent at flush time; such removes are
/// dropped and counted (IngestStats::ops_ignored).
class IngestDriver {
 public:
  using SubscriptionId = uint64_t;

  explicit IngestDriver(api::PlanPtr plan,
                        api::SessionOptions session_options = {},
                        IngestDriverOptions options = {});
  ~IngestDriver();

  IngestDriver(const IngestDriver&) = delete;
  IngestDriver& operator=(const IngestDriver&) = delete;

  /// Stages an insert/update. Validates side and arity synchronously;
  /// queue-full handling per IngestDriverOptions::backpressure;
  /// FailedPrecondition after Stop.
  Status Upsert(int side, Tuple tuple) EXCLUDES(queue_mu_);

  /// Stages a removal (dropped silently at flush time when the id is
  /// unknown — see class comment).
  Status Remove(int side, TupleId id) EXCLUDES(queue_mu_);

  /// Blocks until every op enqueued before this call has been flushed,
  /// then returns the report of the flush that covered the last of them
  /// (with IngestReport::queue_depth/coalesced_deltas filled in). An
  /// immediately-satisfied Drain returns the previous flush's report.
  Result<api::IngestReport> Drain() EXCLUDES(queue_mu_);

  /// Final flush of everything staged, then clean shutdown of the
  /// flusher and every subscription (see class comment). Idempotent;
  /// called by the destructor.
  void Stop() EXCLUDES(queue_mu_, subs_mu_);

  /// Attaches a sink; deltas of every generation published after this
  /// call are delivered in order (plus the current state first, with
  /// SubscribeOptions::initial_snapshot). The sink must outlive the
  /// subscription.
  SubscriptionId Subscribe(MatchDeltaSink* sink, SubscribeOptions = {})
      EXCLUDES(subs_mu_);

  /// Detaches and joins the subscription's delivery thread; after the
  /// call returns, its sink is never invoked again. False for unknown
  /// ids.
  bool Unsubscribe(SubscriptionId id) EXCLUDES(subs_mu_);

  /// Lock-free consistent read view of the owned session's latest
  /// published generation (safe concurrently with everything above).
  api::SessionView View() const { return session_.View(); }
  uint64_t generation() const { return session_.generation(); }
  /// The owned session, for its read API. Ingest through the driver, not
  /// the session — staging directly would bypass the queue accounting.
  const api::MatchSession& session() const { return session_; }

  IngestStats stats() const EXCLUDES(queue_mu_);

 private:
  struct StagedOp {
    int side = 0;
    TupleId id = 0;
    std::optional<Tuple> tuple;  ///< nullopt = removal
  };

  struct Subscriber {
    MatchDeltaSink* sink = nullptr;
    size_t capacity = 0;
    util::Mutex mu;
    util::CondVar cv;
    std::deque<std::shared_ptr<const MatchDelta>> queue GUARDED_BY(mu);
    bool lagging GUARDED_BY(mu) = false;  ///< overflowed (or
                                          ///< initial_snapshot): next
                                          ///< delivery is a resync
    bool stop GUARDED_BY(mu) = false;
    /// Generation the sink's state reflects — delivery thread only.
    uint64_t last_generation = 0;
    /// The delivery thread. Started under subs_mu_ *and* mu in Subscribe
    /// (so the subscription is fully registered before the loop can
    /// observe it); joined exactly once, by whoever moves it out under mu
    /// in StopSubscriber — a concurrent Stop/Unsubscribe pair cannot
    /// double-join.
    std::thread thread GUARDED_BY(mu);
  };
  using SubscriberPtr = std::shared_ptr<Subscriber>;

  /// Backpressure-aware staging shared by Upsert and Remove: one bounded
  /// push that blocks or rejects at capacity per options_.backpressure.
  Status StageOp(StagedOp op) EXCLUDES(queue_mu_);

  void FlusherLoop() EXCLUDES(queue_mu_);
  void RunFlushCycle(std::vector<StagedOp> batch) EXCLUDES(queue_mu_);
  void FanOut(const std::shared_ptr<const MatchDelta>& delta)
      EXCLUDES(subs_mu_);
  void DeliveryLoop(Subscriber* sub);
  /// Stops and joins `sub`'s delivery thread (idempotent; see
  /// Subscriber::thread). Callers pass a shared_ptr they own, so the
  /// subscriber outlives the join even when another thread already
  /// erased it from subscribers_.
  void StopSubscriber(const SubscriberPtr& sub);

  api::MatchSession session_;
  IngestDriverOptions options_;

  /// Staging queue + everything the producer/flusher handshake needs.
  mutable util::Mutex queue_mu_;
  util::CondVar queue_cv_;    ///< wakes the flusher
  util::CondVar space_cv_;    ///< wakes blocked producers
  util::CondVar drained_cv_;  ///< wakes Drain waiters
  std::deque<StagedOp> queue_ GUARDED_BY(queue_mu_);
  bool stop_ GUARDED_BY(queue_mu_) = false;
  uint64_t ops_enqueued_ GUARDED_BY(queue_mu_) = 0;
  /// Ops covered by completed flushes.
  uint64_t ops_flushed_through_ GUARDED_BY(queue_mu_) = 0;
  size_t ops_rejected_ GUARDED_BY(queue_mu_) = 0;
  size_t ops_ignored_ GUARDED_BY(queue_mu_) = 0;
  size_t flushes_ GUARDED_BY(queue_mu_) = 0;
  size_t coalesced_total_ GUARDED_BY(queue_mu_) = 0;
  api::IngestReport last_report_ GUARDED_BY(queue_mu_);

  util::Mutex subs_mu_;
  std::unordered_map<SubscriptionId, SubscriberPtr> subscribers_
      GUARDED_BY(subs_mu_);
  SubscriptionId next_subscription_ GUARDED_BY(subs_mu_) = 1;
  std::atomic<size_t> deltas_delivered_{0};
  std::atomic<size_t> resyncs_{0};

  /// The generation the last fan-out described — flusher thread only.
  api::SessionGenerationPtr prev_generation_;
  std::thread flusher_;
};

}  // namespace mdmatch::stream

#endif  // MDMATCH_STREAM_INGEST_DRIVER_H_
