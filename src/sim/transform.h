#ifndef MDMATCH_SIM_TRANSFORM_H_
#define MDMATCH_SIM_TRANSFORM_H_

#include <map>
#include <string>
#include <string_view>

#include "sim/sim_op.h"

namespace mdmatch::sim {

/// \brief Constant transformation / synonym table — the paper's second
/// future-work item ("augment similarity relations with constants, to
/// capture domain-specific synonym rules along the same lines as
/// [3, 5, 23]", Section 8).
///
/// Values are canonicalized token-by-token (case-insensitive) before
/// comparison: "620 Elm Street" and "620 Elm St." both normalize to
/// "620 ELM ST". Multi-word synonyms ("United States" -> "USA") are
/// applied before tokenization, longest first.
class TransformTable {
 public:
  /// Adds a synonym rule: occurrences of `from` (case-insensitive) become
  /// `to`. Multi-word `from` values are supported.
  void AddSynonym(std::string_view from, std::string_view to);

  /// Canonicalizes a value: upper-cases, strips '.' after abbreviations,
  /// applies multi-word synonyms, then per-token synonyms, and collapses
  /// whitespace.
  std::string Apply(std::string_view value) const;

  size_t size() const { return token_rules_.size() + phrase_rules_.size(); }

  /// A table pre-loaded with common US address and state abbreviations
  /// (Street/St, Avenue/Ave, Road/Rd, ..., New Jersey/NJ, ...) and country
  /// synonyms (United States/USA).
  static TransformTable UsAddressDefaults();

 private:
  std::map<std::string, std::string> token_rules_;   // single tokens
  std::map<std::string, std::string> phrase_rules_;  // multi-word, by upper
};

/// Registers "teq:<name>" — equality after canonicalization by `table` —
/// in the registry. The operator satisfies the generic axioms (equality
/// short-circuit plus a deterministic canonical form makes it reflexive
/// and symmetric). The table is copied into the operator.
SimOpId RegisterTransformedEq(SimOpRegistry* reg, std::string name,
                              const TransformTable& table);

/// Registers "tdl:<name>@theta" — the thresholded DL similarity applied to
/// canonicalized values.
SimOpId RegisterTransformedDl(SimOpRegistry* reg, std::string name,
                              const TransformTable& table, double theta);

}  // namespace mdmatch::sim

#endif  // MDMATCH_SIM_TRANSFORM_H_
