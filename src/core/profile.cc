#include "core/profile.h"

#include <algorithm>
#include <set>
#include <string>

namespace mdmatch {

namespace {

bool IsEmptyValue(const std::string& v) { return v.empty() || v == "null"; }

/// Distinct / total for one attribute of one relation.
double DistinctRatio(const Relation& rel, AttrId a) {
  if (rel.empty()) return 0;
  std::set<std::string> distinct;
  for (const auto& t : rel.tuples()) distinct.insert(t.value(a));
  return static_cast<double>(distinct.size()) /
         static_cast<double>(rel.size());
}

}  // namespace

DataProfile DataProfile::Analyze(const Instance& instance,
                                 const std::vector<AttrPair>& pairs) {
  DataProfile profile;
  for (const AttrPair& p : pairs) {
    AttrPairStats stats;
    double length_total = 0;
    size_t empty = 0, count = 0;
    for (const auto& t : instance.left().tuples()) {
      const std::string& v = t.value(p.left);
      length_total += static_cast<double>(v.size());
      empty += IsEmptyValue(v);
      ++count;
    }
    for (const auto& t : instance.right().tuples()) {
      const std::string& v = t.value(p.right);
      length_total += static_cast<double>(v.size());
      empty += IsEmptyValue(v);
      ++count;
    }
    if (count > 0) {
      stats.avg_length = length_total / static_cast<double>(count);
      stats.empty_rate =
          static_cast<double>(empty) / static_cast<double>(count);
    }
    stats.distinct_ratio =
        std::min(DistinctRatio(instance.left(), p.left),
                 DistinctRatio(instance.right(), p.right));
    profile.stats_[p] = stats;
  }
  return profile;
}

const AttrPairStats& DataProfile::stats(AttrPair p) const {
  static const AttrPairStats kEmpty;
  auto it = stats_.find(p);
  return it == stats_.end() ? kEmpty : it->second;
}

void DataProfile::ApplyTo(QualityModel* quality) const {
  for (const auto& [pair, stats] : stats_) {
    quality->SetLength(pair, stats.avg_length);
    quality->SetAccuracy(pair, std::max(0.05, 1.0 - stats.empty_rate));
  }
}

std::vector<AttrPair> DataProfile::LowSelectivityPairs(
    double min_distinct_ratio) const {
  std::vector<AttrPair> out;
  for (const auto& [pair, stats] : stats_) {
    if (stats.distinct_ratio < min_distinct_ratio) out.push_back(pair);
  }
  return out;
}

}  // namespace mdmatch
