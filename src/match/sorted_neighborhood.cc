#include "match/sorted_neighborhood.h"

#include "match/windowing.h"

namespace mdmatch::match {

SnResult SortedNeighborhood(const Instance& instance,
                            const sim::SimOpRegistry& ops,
                            const std::vector<KeyFunction>& passes,
                            const std::vector<MatchRule>& rules,
                            const SnOptions& options) {
  SnResult result;
  for (const auto& pass : passes) {
    CandidateSet pass_candidates =
        WindowCandidates(instance, pass, options.window_size);
    for (const auto& [l, r] : pass_candidates.pairs()) {
      if (!result.candidates.Add(l, r)) continue;  // compared in a prior pass
      ++result.comparisons;
      if (AnyRuleMatches(rules, ops, instance.left().tuple(l),
                         instance.right().tuple(r))) {
        result.matches.Add(l, r);
      }
    }
  }
  return result;
}

std::vector<KeyFunction> SortKeysFromRules(const std::vector<MatchRule>& rules,
                                           const SchemaPair& pair,
                                           size_t max_passes,
                                           size_t max_elems) {
  std::vector<KeyFunction> keys;
  for (const auto& rule : rules) {
    if (keys.size() >= max_passes) break;
    if (rule.empty()) continue;
    keys.push_back(KeyFunction::FromKeyElements(rule, pair, max_elems,
                                                {"fname", "lname", "name"}));
  }
  return keys;
}

}  // namespace mdmatch::match
