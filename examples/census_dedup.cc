// Census-style deduplication on a single relation: MDs over (R, R), the
// self-pair setting of the paper's Example 2.3. Demonstrates:
//   - declaring MDs in the text syntax over one schema,
//   - deducing RCKs for the dedup target,
//   - enforcing the MDs to a stable instance (record fusion), and
//   - using the RCKs as dedup rules with a sliding window.

#include <cstdio>

#include "core/enforce.h"
#include "core/find_rcks.h"
#include "core/md_parser.h"
#include "match/comparison.h"
#include "match/evaluation.h"
#include "match/sorted_neighborhood.h"

using namespace mdmatch;

int main() {
  sim::SimOpRegistry ops = sim::SimOpRegistry::Default();

  Schema person("person", {
                              {"ssn", "ssn"},
                              {"fname", "fname"},
                              {"lname", "lname"},
                              {"addr", "address"},
                              {"phone", "phone"},
                              {"email", "email"},
                          });
  SchemaPair pair(person, person);

  auto target = *ComparableLists::MakeByName(
      pair, {"fname", "lname", "addr", "phone", "email"},
      {"fname", "lname", "addr", "phone", "email"});

  auto sigma = *ParseMdSet(
      "# same SSN: same person - identify everything\n"
      "person[ssn] = person[ssn] -> person[fname,lname,addr,phone,email] "
      "<=> person[fname,lname,addr,phone,email]\n"
      "# same email: identify the name\n"
      "person[email] = person[email] -> person[fname,lname] <=> "
      "person[fname,lname]\n"
      "# same phone: identify the address\n"
      "person[phone] = person[phone] -> person[addr] <=> person[addr]\n"
      "# same last name + address, similar first name: same person\n"
      "person[lname] = person[lname] /\\ person[addr] = person[addr] /\\ "
      "person[fname] ~dl@0.80 person[fname] -> "
      "person[fname,lname,addr,phone,email] <=> "
      "person[fname,lname,addr,phone,email]\n",
      pair, ops);

  std::printf("== MDs over person (self pair) ==\n");
  for (const auto& md : sigma) {
    std::printf("  %s\n", md.ToString(pair, ops).c_str());
  }

  QualityModel quality;
  FindRcksOptions options;
  options.m = 8;
  FindRcksResult rcks = FindRcks(pair, ops, sigma, target, options, &quality);
  std::printf("\n== deduced dedup keys ==\n");
  for (const auto& key : rcks.rcks) {
    std::printf("  %s\n", key.ToString(pair, ops).c_str());
  }

  // A small dirty census slice; entity ids are ground truth.
  Relation people(person);
  (void)people.Append({"123-45-6789", "Mary", "Johnson",
                       "12 Cedar Lane, Boston MA", "617-555-0101",
                       "m.johnson@mail.com"},
                      1);
  (void)people.Append({"", "Marry", "Johnson", "12 Cedar Lane, Boston MA",
                       "", "mj@other.net"},
                      1);
  (void)people.Append({"123-45-6789", "M.", "Jonson", "Boston",
                       "617-555-0101", ""},
                      1);
  (void)people.Append({"987-65-4321", "Robert", "Chavez",
                       "9 Summit Avenue, Denver CO", "303-555-0177",
                       "rchavez@gm.com"},
                      2);
  (void)people.Append({"987-65-4321", "Roberto", "Chavez",
                       "9 Summit Avenue, Denver CO", "303-555-0177",
                       "r.chavez@gm.com"},
                      2);
  // NOTE: at most one record may carry an empty SSN. Under the paper's
  // axioms every operator is reflexive, so "" = "" holds and an
  // equality-on-SSN rule would identify two unrelated records that both
  // lack the value. Standardize or complete missing values before
  // matching, or veto such pairs with a NegativeRule.

  Instance instance = SelfPair(people);

  // Dedup with the deduced keys (window over a name sort).
  std::printf("\n== duplicate pairs found ==\n");
  std::vector<match::MatchRule> rules(rcks.rcks.begin(), rcks.rcks.end());
  for (size_t i = 0; i < people.size(); ++i) {
    for (size_t j = i + 1; j < people.size(); ++j) {
      if (match::AnyRuleMatches(rules, ops, people.tuple(i),
                                people.tuple(j))) {
        std::printf("  record %zu ~ record %zu%s\n", i, j,
                    people.tuple(i).entity() == people.tuple(j).entity()
                        ? ""
                        : "  (FALSE POSITIVE)");
      }
    }
  }

  // Record fusion: the chase completes missing values from duplicates.
  auto stable = Enforce(instance, sigma, ops);
  if (!stable.ok()) {
    std::printf("enforce failed: %s\n", stable.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== fused records (stable instance) ==\n");
  for (size_t i = 0; i < stable->left().size(); ++i) {
    std::printf("  %zu:", i);
    for (const auto& v : stable->left().tuple(i).values()) {
      std::printf(" %s |", v.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n(Record 1's missing SSN/phone were filled from record 0 via "
              "the lname+addr+fname rule; Example 2.3's chase in action.)\n");
  return 0;
}
