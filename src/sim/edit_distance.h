#ifndef MDMATCH_SIM_EDIT_DISTANCE_H_
#define MDMATCH_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mdmatch::sim {

/// Classic Levenshtein distance: minimum number of single-character
/// insertions, deletions and substitutions transforming `a` into `b`.
/// Dispatches to the bit-parallel kernel when the shorter string fits a
/// machine word (<= 64 characters), the row DP otherwise.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Bounded Levenshtein: returns the exact distance if it is <= `max_dist`,
/// otherwise returns `max_dist + 1`. Short-circuits on the length gap
/// (|len(a) - len(b)| > max_dist needs no DP at all), then runs Myers'
/// bit-parallel scan — O(max(|a|,|b|)) word ops with early abandon — when
/// the shorter string fits 64 characters, the O(max_dist * min(|a|,|b|))
/// banded DP otherwise.
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t max_dist);

/// Myers' bit-parallel Levenshtein (1999). Requires min(|a|,|b|) <= 64;
/// exact distance in O(max(|a|,|b|)) word operations. Exposed for tests
/// and benchmarks; normal callers go through LevenshteinDistance(Bounded),
/// which dispatch here automatically.
size_t MyersLevenshtein(std::string_view a, std::string_view b);

/// Optimal-string-alignment distance (the "restricted" Damerau-Levenshtein):
/// Levenshtein plus transposition of two adjacent characters, where no
/// substring is edited more than once.
size_t OsaDistance(std::string_view a, std::string_view b);

/// Full Damerau-Levenshtein distance (unrestricted; transpositions may be
/// interleaved with other edits). This is the "DL metric" of the paper's
/// Section 6 experimental setup [18].
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Bounded Damerau-Levenshtein: the exact distance if it is <= `max_dist`,
/// otherwise `max_dist + 1`. Banded Lowrance-Wagner over reused
/// thread-local scratch — O(max_dist * max(|a|,|b|)) cell work and no
/// per-call allocation, which is what makes the θ-DL similarity test
/// cheap enough for the per-pair hot path (budgets are tiny at θ = 0.8).
size_t DamerauLevenshteinDistanceBounded(std::string_view a,
                                         std::string_view b,
                                         size_t max_dist);

/// Normalized DL similarity in [0,1]: 1 - dist / max(|a|,|b|); both empty
/// strings have similarity 1.
double NormalizedDamerauLevenshtein(std::string_view a, std::string_view b);

/// The integral edit budget of the θ-DL test for strings whose longer
/// side has `longest` characters: floor((1 - theta) * longest + ε), the ε
/// absorbing binary-representation error (at θ = 0.8 and length 5 the
/// allowance must be exactly 1 edit, not 0.9999...). DlSimilar holds iff
/// the DL distance is <= this budget; exported so prefilters (e.g. the
/// compiled evaluator's presence signatures) bound against the exact same
/// number.
size_t DlEditBudget(double theta, size_t longest);

/// The paper's thresholded DL predicate: v ~theta v' iff
/// DL(v, v') <= (1 - theta) * max(|v|, |v'|). Section 6 fixes theta = 0.8.
bool DlSimilar(std::string_view a, std::string_view b, double theta);

/// \brief One Myers pattern, prepared once and scanned against many texts.
///
/// The batch evaluator's strips compare one left record against a run of
/// right records; LevenshteinDistanceBounded would rebuild the pattern's
/// per-character position masks (Peq) for every pair. This class builds
/// them once per (strip, atom) and reuses them across the whole strip.
/// The tables are generation-stamped like MyersCore's thread-locals, so
/// Reset costs O(pattern) instead of a 2KB clear.
///
/// BoundedDistance returns exactly what LevenshteinDistanceBounded
/// returns on (pattern, text): the exact distance when it is <= max_dist,
/// max_dist + 1 otherwise — bit-identical decisions, whichever string was
/// chosen as the pattern.
class MyersPattern {
 public:
  /// Starts empty (pattern ""); Reset installs a real pattern.
  MyersPattern() = default;

  /// Installs `pattern`; requires pattern.size() <= 64.
  void Reset(std::string_view pattern);

  size_t size() const { return m_; }

  /// Bounded Levenshtein distance of the prepared pattern against `text`.
  size_t BoundedDistance(std::string_view text, size_t max_dist) const;

 private:
  uint64_t peq_[256] = {};
  uint64_t stamp_[256] = {};
  uint64_t generation_ = 0;
  size_t m_ = 0;
};

/// DlSimilar with the left string prepared as a MyersPattern: `pattern`
/// must hold `a` (when |a| <= 64; longer lefts take the unprepared
/// kernel internally). Decisions are bit-identical to DlSimilar(a, b,
/// theta).
bool DlSimilarPrepared(const MyersPattern& pattern, std::string_view a,
                       std::string_view b, double theta);

}  // namespace mdmatch::sim

#endif  // MDMATCH_SIM_EDIT_DISTANCE_H_
