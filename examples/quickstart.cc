// Quickstart: define two schemas, state matching dependencies in the text
// syntax, deduce relative candidate keys, and use them to match records.
//
// This walks the scenario of the paper's Example 1.1: credit / billing
// relations, three MDs, and the deduced keys that match tuples the original
// rule set cannot — then shows the production entry point: compile the
// reasoning into a MatchPlan once, execute it over data many times.

#include <cstdio>

#include "api/executor.h"
#include "api/plan.h"
#include "core/closure.h"
#include "core/find_rcks.h"
#include "core/md_parser.h"
#include "datagen/credit_billing.h"
#include "match/comparison.h"

using namespace mdmatch;

int main() {
  sim::SimOpRegistry ops = sim::SimOpRegistry::Default();

  // The Example 1.1 dataset ships with the library: credit(t1, t2) and
  // billing(t3..t6), the target lists (Yc, Yb) and MDs ϕ1..ϕ3.
  datagen::Example11Data ex = datagen::MakeExample11(&ops);

  std::printf("== MDs (Σ) ==\n");
  for (const auto& md : ex.mds) {
    std::printf("  %s\n", md.ToString(ex.pair, ops).c_str());
  }

  // You can also parse MDs from text:
  auto parsed = ParseMd(
      "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]", ex.pair,
      ops);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // Deduction: Σ ⊨m φ via algorithm MDClosure (Theorem 4.1).
  // rck4 of Example 2.4: ([email, tel], [email, phn] || [=, =]).
  MdBuilder rck4_builder(ex.pair, &ops);
  rck4_builder.Lhs("email", "=", "email").Lhs("tel", "=", "phn");
  for (size_t i = 0; i < ex.target.size(); ++i) {
    rck4_builder.Rhs(
        ex.pair.left().attribute(ex.target.left()[i]).name,
        ex.pair.right().attribute(ex.target.right()[i]).name);
  }
  auto rck4 = rck4_builder.Build();
  std::printf("\nΣ ⊨m rck4?  %s\n",
              Deduces(ex.pair, ops, ex.mds, *rck4) ? "yes" : "no");

  // findRCKs: deduce a set of quality RCKs relative to (Yc, Yb).
  FindRcksResult found = FindRcks(ex.pair, ops, ex.mds, ex.target, /*m=*/10);
  std::printf("\n== RCKs relative to (Yc, Yb) ==\n");
  for (const auto& key : found.rcks) {
    std::printf("  %s\n", key.ToString(ex.pair, ops).c_str());
  }

  // Matching with the deduced keys: which billing tuples match credit t1?
  std::printf("\n== matches of credit tuple t1 ==\n");
  const Tuple& t1 = ex.instance.left().tuple(0);
  for (size_t bi = 0; bi < ex.instance.right().size(); ++bi) {
    const Tuple& tb = ex.instance.right().tuple(bi);
    for (const auto& key : found.rcks) {
      if (match::RuleMatches(key, ops, t1, tb)) {
        std::printf("  t1 ~ t%zu  via %s\n", bi + 3,
                    key.ToString(ex.pair, ops).c_str());
        break;
      }
    }
  }

  // The production API wraps all of the above in a compile-once /
  // execute-many pair: PlanBuilder runs the reasoning (deduction, key
  // derivation, operator resolution) exactly once, and the immutable plan
  // is then executed over any number of batches — here just one.
  api::PlanOptions popt;
  popt.relax_theta = 0;  // the toy instance is clean; match strictly
  auto plan = api::PlanBuilder(ex.pair, ex.target, &ops)
                  .WithSigma(ex.mds)
                  .WithOptions(popt)
                  .Build();
  if (!plan.ok()) {
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  api::Executor executor(*plan);
  auto report = executor.Run(ex.instance);
  if (!report.ok()) {
    std::printf("run error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n== MatchPlan (compiled once, executable many times) ==\n"
      "compile: %zu RCKs in %.4fs; execute: %zu candidates -> %zu matches "
      "in %.4fs\n",
      (*plan)->rcks().size(), (*plan)->compile_stats().deduce_seconds,
      report->candidates.size(), report->matches.size(),
      report->timings.TotalSeconds());
  return 0;
}
