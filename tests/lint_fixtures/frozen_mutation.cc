// Seeded violations: a frozen type declaring a mutable field and
// non-const member functions. Linted under a pretend src/ path.

#include <cstdint>
#include <vector>

namespace mdmatch::candidate {

class IndexSnapshot {
 public:
  uint64_t version() const { return version_; }

  void BumpVersion() { ++version_; }  // BAD: mutator on a frozen type

  void Clear();  // BAD: out-of-line mutator declaration

 private:
  uint64_t version_ = 0;
  mutable std::vector<int> scratch_;  // BAD: mutable field
};

}  // namespace mdmatch::candidate
